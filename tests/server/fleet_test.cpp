#include "server/fleet.hpp"

#include <gtest/gtest.h>

#include <set>

namespace u1 {
namespace {

TEST(ServerFleet, ConstructionLayout) {
  ServerFleet fleet(FleetConfig{6, 12}, 1);
  EXPECT_EQ(fleet.machine_count(), 6u);
  EXPECT_EQ(fleet.process_count(), 72u);
  // Every process maps to a valid machine.
  for (std::size_t p = 1; p <= 72; ++p) {
    const MachineId m = fleet.machine_of(ProcessId{p});
    EXPECT_GE(m.value, 1u);
    EXPECT_LE(m.value, 6u);
  }
}

TEST(ServerFleet, RejectsZeroConfig) {
  EXPECT_THROW(ServerFleet(FleetConfig{0, 4}, 1), std::invalid_argument);
  EXPECT_THROW(ServerFleet(FleetConfig{4, 0}, 1), std::invalid_argument);
}

TEST(ServerFleet, PlacementPrefersLeastLoaded) {
  ServerFleet fleet(FleetConfig{3, 2}, 2);
  // First three placements land on three distinct machines (leastconn).
  std::set<std::uint64_t> machines;
  for (int i = 0; i < 3; ++i) machines.insert(fleet.place_session().machine.value);
  EXPECT_EQ(machines.size(), 3u);
  EXPECT_EQ(fleet.total_open_sessions(), 3u);
}

TEST(ServerFleet, PlacementProcessBelongsToMachine) {
  ServerFleet fleet(FleetConfig{4, 8}, 3);
  for (int i = 0; i < 100; ++i) {
    const auto p = fleet.place_session();
    EXPECT_EQ(fleet.machine_of(p.process), p.machine);
  }
}

TEST(ServerFleet, EndSessionReleasesSlot) {
  ServerFleet fleet(FleetConfig{2, 2}, 4);
  const auto a = fleet.place_session();
  EXPECT_EQ(fleet.open_sessions(a.machine), 1u);
  EXPECT_EQ(fleet.process_sessions(a.process), 1u);
  EXPECT_TRUE(fleet.end_session(a.machine, a.process));
  EXPECT_EQ(fleet.open_sessions(a.machine), 0u);
  // Idempotent under fault races: a disconnect after a crash already
  // dropped the session is a no-op, not a crash.
  EXPECT_FALSE(fleet.end_session(a.machine, a.process));
}

TEST(ServerFleet, BadIdsThrow) {
  ServerFleet fleet(FleetConfig{2, 2}, 5);
  EXPECT_THROW(fleet.machine_of(ProcessId{0}), std::out_of_range);
  EXPECT_THROW(fleet.machine_of(ProcessId{99}), std::out_of_range);
  EXPECT_THROW(fleet.open_sessions(MachineId{0}), std::out_of_range);
  EXPECT_THROW(fleet.end_session(MachineId{9}, ProcessId{1}),
               std::out_of_range);
  EXPECT_THROW(fleet.end_session(MachineId{1}, ProcessId{99}),
               std::out_of_range);
}

TEST(ServerFleet, KillAndRespawnProcess) {
  ServerFleet fleet(FleetConfig{2, 2}, 9);
  const ProcessId victim{1};
  EXPECT_TRUE(fleet.process_alive(victim));
  fleet.kill_process(victim);
  EXPECT_FALSE(fleet.process_alive(victim));
  // Placement skips the dead process.
  for (int i = 0; i < 50; ++i) {
    const auto p = fleet.place_session();
    EXPECT_NE(p.process.value, victim.value);
  }
  fleet.respawn_process(victim);
  EXPECT_TRUE(fleet.process_alive(victim));
}

TEST(ServerFleet, MachineOutageRedirectsPlacements) {
  ServerFleet fleet(FleetConfig{3, 2}, 10);
  fleet.kill_machine(MachineId{2});
  EXPECT_FALSE(fleet.machine_alive(MachineId{2}));
  EXPECT_TRUE(fleet.live_processes_on(MachineId{2}).empty());
  for (int i = 0; i < 60; ++i) {
    const auto p = fleet.place_session();
    EXPECT_NE(p.machine.value, 2u);
  }
  fleet.restore_machine(MachineId{2});
  EXPECT_TRUE(fleet.machine_alive(MachineId{2}));
  EXPECT_EQ(fleet.live_processes_on(MachineId{2}).size(), 2u);
}

TEST(ServerFleet, PerProcessCapShedsLoad) {
  ServerFleet fleet(FleetConfig{2, 1}, 11);
  // Two processes, cap 1: the third concurrent session has nowhere to go.
  ASSERT_TRUE(fleet.place_session(1).has_value());
  ASSERT_TRUE(fleet.place_session(1).has_value());
  EXPECT_FALSE(fleet.place_session(1).has_value());
  // Whole fleet dead: capacity-0 placement also sheds.
  fleet.kill_machine(MachineId{1});
  fleet.kill_machine(MachineId{2});
  EXPECT_FALSE(fleet.place_session(0).has_value());
  EXPECT_THROW(fleet.place_session(), std::logic_error);
}

TEST(ServerFleet, MigrationMovesProcessesButKeepsCoverage) {
  ServerFleet fleet(FleetConfig{4, 10}, 6);
  std::size_t moved_total = 0;
  for (int i = 0; i < 10; ++i) moved_total += fleet.migrate_processes(0.5);
  EXPECT_GT(moved_total, 0u);
  // Machines must all keep at least one process: placements never throw.
  for (int i = 0; i < 200; ++i) {
    const auto p = fleet.place_session();
    EXPECT_EQ(fleet.machine_of(p.process), p.machine);
  }
}

TEST(ServerFleet, MigrationValidatesFraction) {
  ServerFleet fleet(FleetConfig{2, 2}, 7);
  EXPECT_THROW(fleet.migrate_processes(-0.1), std::invalid_argument);
  EXPECT_THROW(fleet.migrate_processes(1.1), std::invalid_argument);
  EXPECT_EQ(fleet.migrate_processes(0.0), 0u);
}

TEST(ServerFleet, LongRunBalancedPlacements) {
  ServerFleet fleet(FleetConfig{6, 12}, 8);
  std::vector<int> per_machine(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto p = fleet.place_session();
    per_machine[p.machine.value - 1]++;
  }
  // leastconn with no departures gives near-perfect balance.
  for (const int c : per_machine) EXPECT_EQ(c, 1000);
}

}  // namespace
}  // namespace u1
