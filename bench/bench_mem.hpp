// Process-memory probes shared by every bench that writes a
// BENCH_*.json: peak RSS via getrusage and the glibc allocator's
// currently-live bytes via mallinfo2. Header-only and dependency-free so
// the network bench (which links none of the sim libraries) can use them
// too.
#pragma once

#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace u1::bench {

/// Peak resident set size of this process, in KB (getrusage ru_maxrss;
/// 0 when the platform has no getrusage). Monotone over the process
/// lifetime — sample it right after the phase being measured, before
/// anything larger runs.
inline std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // KB on Linux
#endif
#else
  return 0;
#endif
}

/// Bytes currently handed out by the glibc allocator, in KB (mallinfo2
/// uordblks; 0 on other libcs). Unlike peak RSS this goes *down* when
/// state is freed, so sampling it at the measurement point gives the
/// live-heap footprint of what the run kept.
inline std::uint64_t heap_in_use_kb() {
#if defined(__GLIBC__) && defined(__GLIBC_PREREQ)
#if __GLIBC_PREREQ(2, 33)
  const struct mallinfo2 info = mallinfo2();
  return static_cast<std::uint64_t>(info.uordblks) / 1024;
#else
  return 0;
#endif
#else
  return 0;
#endif
}

}  // namespace u1::bench
