// Envelope-path equivalence oracle (ISSUE 7 acceptance): running the
// month-in-the-life simulation with every backend call round-tripped
// through the wire codec (BackendConfig::wire_check) must produce a
// byte-identical merged trace to the direct-call path, at every thread
// count. Any divergence means the envelope drops or distorts a field the
// simulation depends on — the API redesign would not be wire-ready.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/parallel.hpp"
#include "sim/simulation.hpp"
#include "trace/sink.hpp"
#include "util/sha1.hpp"

namespace u1 {
namespace {

SimulationConfig small_config(bool wire_check) {
  SimulationConfig cfg;
  cfg.users = 200;
  cfg.days = 3;
  cfg.seed = 20140111;
  cfg.enable_ddos = true;
  cfg.backend.wire_check = wire_check;
  return cfg;
}

/// SHA-1 over the CSV projection of the merged trace — the same digest
/// discipline the perf smoke uses.
Sha1Digest trace_sha1(const SimulationConfig& cfg, std::size_t threads,
                      SimulationReport* report = nullptr) {
  InMemorySink sink;
  ParallelSimulation sim(cfg, sink, threads);
  const SimulationReport r = sim.run();
  if (report != nullptr) *report = r;
  std::string all;
  for (const TraceRecord& rec : sink.records()) {
    for (const std::string& field : rec.to_csv()) {
      all += field;
      all += ',';
    }
    all += '\n';
  }
  EXPECT_FALSE(all.empty());
  return Sha1::of(all);
}

TEST(EnvelopeEquivalence, WireCheckedTraceIdenticalAtEveryThreadCount) {
  // One direct-call baseline, then the wire-checked path at 1/2/4/8
  // threads: five runs, one hash.
  const Sha1Digest direct = trace_sha1(small_config(false), 1);
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    SimulationReport report;
    const Sha1Digest wired =
        trace_sha1(small_config(true), threads, &report);
    EXPECT_EQ(wired, direct)
        << "wire_check trace diverged at " << threads << " threads";
    EXPECT_GT(report.backend.rpcs, 0u);
  }
}

TEST(EnvelopeEquivalence, WireCheckLeavesReportCountersUntouched) {
  SimulationReport direct, wired;
  (void)trace_sha1(small_config(false), 2, &direct);
  (void)trace_sha1(small_config(true), 2, &wired);
  EXPECT_EQ(direct.backend.sessions_opened, wired.backend.sessions_opened);
  EXPECT_EQ(direct.backend.uploads, wired.backend.uploads);
  EXPECT_EQ(direct.backend.downloads, wired.backend.downloads);
  EXPECT_EQ(direct.backend.dedup_hits, wired.backend.dedup_hits);
  EXPECT_EQ(direct.backend.upload_bytes_wire, wired.backend.upload_bytes_wire);
  EXPECT_EQ(direct.backend.rpcs, wired.backend.rpcs);
  EXPECT_EQ(direct.agent_wakeups, wired.agent_wakeups);
}

}  // namespace
}  // namespace u1
