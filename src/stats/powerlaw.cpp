#include "stats/powerlaw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace u1 {

double hill_alpha(std::span<const double> sample, double x_min) {
  if (x_min <= 0) throw std::invalid_argument("hill_alpha: x_min <= 0");
  double sum_log = 0;
  std::size_t n = 0;
  for (const double x : sample) {
    if (x >= x_min) {
      sum_log += std::log(x / x_min);
      ++n;
    }
  }
  if (n < 2 || sum_log <= 0)
    throw std::invalid_argument("hill_alpha: insufficient tail");
  return static_cast<double>(n) / sum_log;
}

double ks_distance(std::span<const double> sample, double x_min,
                   double alpha) {
  std::vector<double> tail;
  for (const double x : sample)
    if (x >= x_min) tail.push_back(x);
  if (tail.empty()) throw std::invalid_argument("ks_distance: empty tail");
  std::sort(tail.begin(), tail.end());
  const double n = static_cast<double>(tail.size());
  double ks = 0;
  for (std::size_t i = 0; i < tail.size(); ++i) {
    // Model CDF (of the conditional tail distribution).
    const double model = 1.0 - std::pow(x_min / tail[i], alpha);
    const double emp_hi = static_cast<double>(i + 1) / n;
    const double emp_lo = static_cast<double>(i) / n;
    ks = std::max(ks, std::max(std::abs(emp_hi - model),
                               std::abs(emp_lo - model)));
  }
  return ks;
}

PowerLawFit fit_power_law(std::span<const double> sample,
                          std::size_t max_candidates) {
  std::vector<double> positive;
  positive.reserve(sample.size());
  for (const double x : sample)
    if (x > 0) positive.push_back(x);
  if (positive.size() < 10)
    throw std::invalid_argument("fit_power_law: need >= 10 positive samples");
  std::sort(positive.begin(), positive.end());

  // Candidate x_min values: distinct sample values, subsampled evenly,
  // excluding the top decile (a tail must retain enough mass to fit).
  std::vector<double> candidates;
  const std::size_t upper = positive.size() * 9 / 10;
  const std::size_t step =
      std::max<std::size_t>(1, upper / std::max<std::size_t>(1, max_candidates));
  double last = -1;
  for (std::size_t i = 0; i < upper; i += step) {
    if (positive[i] != last) {
      candidates.push_back(positive[i]);
      last = positive[i];
    }
  }

  PowerLawFit best;
  best.ks = std::numeric_limits<double>::infinity();
  for (const double xm : candidates) {
    std::size_t tail_n =
        positive.end() -
        std::lower_bound(positive.begin(), positive.end(), xm);
    if (tail_n < 10) continue;
    double alpha;
    try {
      alpha = hill_alpha(positive, xm);
    } catch (const std::invalid_argument&) {
      continue;
    }
    const double ks = ks_distance(positive, xm, alpha);
    if (ks < best.ks) {
      best.alpha = alpha;
      best.x_min = xm;
      best.ks = ks;
      best.tail_n = tail_n;
    }
  }
  if (!std::isfinite(best.ks))
    throw std::invalid_argument("fit_power_law: no viable x_min candidate");
  return best;
}

double cv_squared(std::span<const double> sample) {
  if (sample.size() < 2)
    throw std::invalid_argument("cv_squared: need n >= 2");
  double mean = 0;
  for (const double x : sample) mean += x;
  mean /= static_cast<double>(sample.size());
  if (mean == 0) return 0;
  double var = 0;
  for (const double x : sample) var += (x - mean) * (x - mean);
  var /= static_cast<double>(sample.size() - 1);
  return var / (mean * mean);
}

}  // namespace u1
