#include "store/content_registry.hpp"

#include <stdexcept>

namespace u1 {

std::optional<ContentInfo> ContentRegistry::lookup(
    const ContentId& id, std::uint64_t size_bytes) const {
  const auto it = table_.find(id);
  if (it == table_.end()) return std::nullopt;
  if (it->second.size_bytes != size_bytes) return std::nullopt;
  return it->second;
}

bool ContentRegistry::insert(const ContentId& id, std::uint64_t size_bytes,
                             std::string s3_key) {
  const auto [it, inserted] = table_.try_emplace(
      id, ContentInfo{id, size_bytes, 0, std::move(s3_key)});
  if (inserted) unique_bytes_ += size_bytes;
  return inserted;
}

void ContentRegistry::link(const ContentId& id) {
  auto& info = table_.at(id);
  ++info.refcount;
  logical_bytes_ += info.size_bytes;
}

std::optional<ContentInfo> ContentRegistry::unlink(const ContentId& id) {
  auto& info = table_.at(id);
  if (info.refcount == 0)
    throw std::logic_error("ContentRegistry::unlink: refcount already zero");
  --info.refcount;
  logical_bytes_ -= info.size_bytes;
  if (info.refcount == 0) return info;
  return std::nullopt;
}

void ContentRegistry::erase(const ContentId& id) {
  const auto it = table_.find(id);
  if (it == table_.end())
    throw std::out_of_range("ContentRegistry::erase: unknown content");
  if (it->second.refcount != 0)
    throw std::logic_error("ContentRegistry::erase: still referenced");
  unique_bytes_ -= it->second.size_bytes;
  table_.erase(it);
}

std::uint64_t ContentRegistry::refcount_of(const ContentId& id) const noexcept {
  const ContentInfo* info = find(id);
  return info == nullptr ? 0 : info->refcount;
}

const ContentInfo* ContentRegistry::find(const ContentId& id) const noexcept {
  const auto it = table_.find(id);
  return it == table_.end() ? nullptr : &it->second;
}

double ContentRegistry::dedup_ratio() const noexcept {
  if (logical_bytes_ == 0) return 0.0;
  if (unique_bytes_ >= logical_bytes_) return 0.0;
  return 1.0 - static_cast<double>(unique_bytes_) /
                   static_cast<double>(logical_bytes_);
}

}  // namespace u1
