// The U1 metadata store facade: 10 master/slave shards behind a user-id
// router (§3.4), plus the global content-dedup registry. RPC workers call
// the typed operations below; each call records which shards it touched so
// the server layer can account load per shard (Fig. 14) and model
// single-shard (lockless) vs cross-shard (sharing) operations.
//
// Thread-safety: none — the simulator is a single-threaded discrete-event
// loop; this mirrors one logical timeline of the production system.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "proto/entities.hpp"
#include "store/content_registry.hpp"
#include "store/shard.hpp"
#include "util/rng.hpp"

namespace u1 {

class MetadataStore {
 public:
  /// n_shards defaults to the production cluster's 10 (paper §3.4).
  explicit MetadataStore(std::size_t n_shards = 10,
                         std::uint64_t seed = 0x5eed);

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// user-id -> shard routing, exactly the paper's "routes operations by
  /// user identifier to the appropriate shard".
  ShardId shard_of(UserId user) const noexcept;

  /// Shards touched by the most recent operation (1 for everything except
  /// share-related calls). Valid until the next operation.
  const std::vector<ShardId>& shards_touched() const noexcept {
    return touched_;
  }

  /// Clears the touched-shard list; callers issuing RPCs that bypass the
  /// store (e.g. auth.get_user_id_from_token) use this so stale shard info
  /// does not leak into their accounting.
  void clear_touched() noexcept { touched_.clear(); }

  // --- account ------------------------------------------------------------
  /// Registers a user and their root volume; returns the root volume.
  Volume create_user(UserId user, SimTime now);
  bool has_user(UserId user) const;

  // --- reads ---------------------------------------------------------------
  std::vector<Volume> list_volumes(UserId user);
  /// Shared volumes visible to `user` — may touch the owners' shards too.
  std::vector<Volume> list_shares(UserId user);
  std::optional<User> get_user_data(UserId user);
  std::optional<Node> get_node(UserId owner, NodeId id);
  NodeId get_root(UserId user);
  std::vector<Node> get_delta(UserId owner, VolumeId volume,
                              std::uint64_t since_generation);
  std::vector<Node> get_from_scratch(UserId owner, VolumeId volume);

  // --- namespace writes ------------------------------------------------------
  Node make_dir(UserId user, VolumeId volume, NodeId parent,
                std::string name_hash, SimTime now);
  Node make_file(UserId user, VolumeId volume, NodeId parent,
                 std::string name_hash, std::string extension, SimTime now);
  /// Cascading unlink; returns content ids whose dedup refcount dropped to
  /// zero (dead blobs the API server must delete from the data store).
  std::vector<ContentInfo> unlink_node(UserId user, NodeId id);
  void move(UserId user, NodeId id, NodeId new_parent);
  Volume create_udf(UserId user, SimTime now);
  /// Cascading volume delete; returns dead blobs as unlink_node does.
  std::vector<ContentInfo> delete_volume(UserId user, VolumeId volume);

  // --- content & dedup -------------------------------------------------------
  /// dal.get_reusable_content: returns the existing blob if (hash, size)
  /// is already stored, enabling the client to skip the upload.
  std::optional<ContentInfo> get_reusable_content(const ContentId& content,
                                                  std::uint64_t size_bytes);
  /// Final step of blob garbage collection: once the API server has
  /// deleted a dead blob from the data store, drop its registry entry so
  /// dedup accounting reflects only live data.
  void purge_content(const ContentId& content);

  /// dal.make_content: attach content to a file node, registering the blob
  /// on first sight and maintaining dedup references. Returns the dead
  /// previous blob if this update orphaned one.
  std::optional<ContentInfo> make_content(UserId user, NodeId node,
                                          const ContentId& content,
                                          std::uint64_t size_bytes,
                                          std::string s3_key);

  // --- upload jobs ------------------------------------------------------------
  UploadJob make_uploadjob(UserId user, NodeId node, const ContentId& content,
                           std::uint64_t declared_size, SimTime now);
  std::optional<UploadJob> get_uploadjob(UserId user, UploadJobId id);
  void set_uploadjob_multipart_id(UserId user, UploadJobId id,
                                  std::string multipart_id);
  /// Returns the job's cumulative bytes after adding the part.
  std::uint64_t add_part_to_uploadjob(UserId user, UploadJobId id,
                                      std::uint64_t part_bytes, SimTime now);
  void touch_uploadjob(UserId user, UploadJobId id, SimTime now);
  void delete_uploadjob(UserId user, UploadJobId id);
  /// Weekly GC sweep (appendix A): deletes jobs idle since `cutoff`
  /// across all shards; returns the collected jobs so the caller can
  /// abort their in-flight S3 multipart uploads.
  std::vector<UploadJob> gc_uploadjobs(SimTime cutoff);

  // --- sharing ---------------------------------------------------------------
  /// Grants `to` access to an owner's volume (cross-shard when the two
  /// users live on different shards, as in the paper).
  void share_volume(UserId owner, VolumeId volume, UserId to, SimTime now);

  /// Shard-parallel worker hook: drops `user`'s node rows on their home
  /// shard without touching dedup refcounts (see Shard::shed_user_namespace).
  /// Does not count as an operation — shards_touched() is unaffected.
  void shed_user_namespace(UserId user) {
    shard_ref(shard_of(user)).shed_user_namespace(user);
  }

  /// Re-points every dedup operation (lookup/insert/link/unlink/erase) at
  /// an external index instead of the store-owned registry. The
  /// shard-parallel engine uses this to share one global dedup registry
  /// across per-group stores (live during sequential setup, epoch-overlay
  /// during the parallel run). nullptr restores the owned registry.
  void set_dedup_proxy(DedupProxy* proxy) noexcept { dedup_ = proxy; }

  // --- introspection -----------------------------------------------------------
  const ContentRegistry& contents() const noexcept { return contents_; }
  const Shard& shard(ShardId id) const;
  std::size_t total_nodes() const noexcept;
  std::size_t total_users() const noexcept;

 private:
  Shard& route(UserId user);
  Shard& shard_ref(ShardId id);
  void touch(ShardId id);
  void reset_touched() { touched_.clear(); }
  DedupProxy& dedup() noexcept {
    return dedup_ != nullptr ? *dedup_ : contents_;
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  ContentRegistry contents_;
  DedupProxy* dedup_ = nullptr;
  Rng rng_;
  std::vector<ShardId> touched_;
};

}  // namespace u1
