// Minimal CSV reader/writer. The U1 trace is 758GB of .csv logfiles
// (paper §4.1); our trace layer serializes to the same shape, so this is
// the only file-format code in the repository.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace u1 {

/// Escape-aware CSV writer for one output stream. Fields containing the
/// delimiter, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char delim = ',')
      : out_(&out), delim_(delim) {}

  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream* out_;
  char delim_;
};

/// Parses a single CSV line into fields, honoring RFC 4180 quoting.
/// Returns false on malformed input (unterminated quote) — the paper
/// reports ~1% of trace lines failed parsing, and our reader surfaces the
/// same condition instead of guessing.
bool parse_csv_line(std::string_view line, char delim,
                    std::vector<std::string>& fields);

/// Streaming CSV reader over an istream.
class CsvReader {
 public:
  explicit CsvReader(std::istream& in, char delim = ',')
      : in_(&in), delim_(delim) {}

  /// Reads the next row; returns false at end of stream. Malformed rows
  /// increment error_count() and are skipped.
  bool next(std::vector<std::string>& fields);

  std::uint64_t error_count() const noexcept { return errors_; }
  std::uint64_t row_count() const noexcept { return rows_; }

 private:
  std::istream* in_;
  char delim_;
  std::uint64_t errors_ = 0;
  std::uint64_t rows_ = 0;
};

}  // namespace u1
