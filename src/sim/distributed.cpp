#include "sim/distributed.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>

#include "sim/trace_merge.hpp"
#include "trace/record.hpp"
#include "trace/symbols.hpp"

namespace u1 {
namespace {

// ---------------------------------------------------------------------------
// EINTR-safe fd plumbing. The control sockets and segment files are
// plain blocking fds; every transfer loops over short results and
// retries EINTR, so a signal delivered mid-epoch can never shear a
// frame (the same robustness contract as net/client.cpp).

void write_exact(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t k = ::write(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("distributed: write failed: ") +
                               std::strerror(errno));
    }
    if (k == 0) throw std::runtime_error("distributed: write returned 0");
    p += static_cast<std::size_t>(k);
    n -= static_cast<std::size_t>(k);
  }
}

void read_exact(int fd, void* data, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(data);
  while (n > 0) {
    const ssize_t k = ::read(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("distributed: read failed: ") +
                               std::strerror(errno));
    }
    if (k == 0) throw std::runtime_error("distributed: peer closed mid-frame");
    p += static_cast<std::size_t>(k);
    n -= static_cast<std::size_t>(k);
  }
}

void send_frame(int fd, ProtoOp op, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> frame;
  append_control_frame(frame, op, payload);
  write_exact(fd, frame.data(), frame.size());
}

/// Reads one whole control frame and splits it through the strict
/// decoder, so a corrupt peer fails with the envelope's typed error
/// instead of a silent misparse. `buf` backs the returned payload view.
ProtoOp recv_frame(int fd, std::vector<std::uint8_t>& buf,
                   std::span<const std::uint8_t>& payload) {
  std::uint8_t hdr[4];
  read_exact(fd, hdr, sizeof(hdr));
  const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                            (static_cast<std::uint32_t>(hdr[1]) << 8) |
                            (static_cast<std::uint32_t>(hdr[2]) << 16) |
                            (static_cast<std::uint32_t>(hdr[3]) << 24);
  if (len > kMaxControlFrameBytes)
    throw std::runtime_error("distributed: oversized control frame");
  buf.resize(4 + len);
  std::memcpy(buf.data(), hdr, sizeof(hdr));
  read_exact(fd, buf.data() + 4, len);
  ProtoOp op{};
  const FrameDecode d =
      split_control_frame(buf.data(), buf.size(), op, payload);
  if (d.status != Status::kOk || d.need_more)
    throw std::runtime_error(std::string("distributed: bad control frame: ") +
                             std::string(to_string(d.status)));
  return op;
}

[[noreturn]] void throw_status(const char* what, Status s) {
  throw std::runtime_error(std::string("distributed: ") + what + ": " +
                           std::string(to_string(s)));
}

// ---------------------------------------------------------------------------
// Segment file codec. Workers spool their finished trace chunks to a
// local scratch file — records never cross the sockets — and the
// coordinator streams the files back one chunk at a time at close, so
// its own resident set stays one epoch deep. Layout per chunk:
//
//   varint chunk_seq
//   per local group, ascending:
//     varint n_syms    then n_syms × (varint worker_global_id,
//                                     varint len, len raw bytes)
//     varint n_records then n_records × sizeof(TraceRecord) raw bytes

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(int fd) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    std::uint8_t byte = 0;
    read_exact(fd, &byte, 1);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
  }
  throw std::runtime_error("distributed: overlong varint in segment");
}

std::uint64_t peak_rss_kb() {
  rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);  // KiB on Linux
}

// ---------------------------------------------------------------------------
// ChunkMeta counter layout: the positional contract between worker and
// coordinator (proto/control.hpp keeps the frame itself generic).

static_assert(std::is_trivially_copyable_v<BackendStats> &&
                  sizeof(BackendStats) % sizeof(std::uint64_t) == 0,
              "BackendStats must memcpy into the ChunkMeta counter block");
constexpr std::size_t kBackendWords =
    sizeof(BackendStats) / sizeof(std::uint64_t);

enum CounterIx : std::size_t {
  kCtrBackend = 0,  // kBackendWords u64s, memcpy'd BackendStats
  kCtrUsers = kBackendWords,
  kCtrHorizon,
  kCtrAgentWakeups,
  kCtrBootstrapFiles,
  kCtrDdosAttacks,
  kCtrFaultEvents,
  kCtrAutoPurges,
  kCtrFirstDelay,
  kCtrCrossDead,
  kCtrRecords,
  kCtrFirstPurgeBarrier,
  kCtrFirstPurgeGroup,
  kCtrPeakRssKb,
  kCtrChunks,
  kCtrCount,
};

ChunkMetaMsg pack_meta(const SimulationReport& rep,
                       const ParallelSimulation& sim,
                       std::uint64_t chunks_written) {
  ChunkMetaMsg meta;
  meta.seq = chunks_written;
  meta.counters.resize(kCtrCount, 0);
  std::memcpy(meta.counters.data(), &rep.backend, sizeof(BackendStats));
  meta.counters[kCtrUsers] = rep.users;
  meta.counters[kCtrHorizon] = static_cast<std::uint64_t>(rep.horizon);
  meta.counters[kCtrAgentWakeups] = rep.agent_wakeups;
  meta.counters[kCtrBootstrapFiles] = rep.bootstrap_files;
  meta.counters[kCtrDdosAttacks] = rep.ddos_attacks;
  meta.counters[kCtrFaultEvents] = rep.fault_events;
  meta.counters[kCtrAutoPurges] = rep.auto_purges;
  meta.counters[kCtrFirstDelay] =
      static_cast<std::uint64_t>(rep.first_auto_response_delay);
  meta.counters[kCtrCrossDead] = sim.cross_group_dead_blobs();
  meta.counters[kCtrRecords] = sim.records_flushed();
  meta.counters[kCtrFirstPurgeBarrier] = sim.first_purge_barrier();
  meta.counters[kCtrFirstPurgeGroup] = sim.first_purge_group();
  meta.counters[kCtrPeakRssKb] = peak_rss_kb();
  meta.counters[kCtrChunks] = chunks_written;
  const ParallelSimulation::EpochPhases& ph = sim.phases();
  meta.timings = {ph.compute_s, ph.merge_s,       ph.flush_s,
                  ph.write_s,   ph.flush_stall_s, ph.ring_stall_s};
  return meta;
}

// ---------------------------------------------------------------------------
// Group slicing: contiguous ascending ranges, so worker rank order IS
// global group order — the k-way feed merge and the segment readback
// both lean on it.

struct Slice {
  std::size_t first = 0;
  std::size_t count = 0;
};

/// Contiguous min-max partition of the group weights into `workers`
/// slices (classic DP; G and P are both tiny). Weighted boundaries keep
/// the heaviest worker's end-of-run RSS near total/P instead of letting
/// the hash-skewed heavy groups pile into one slice; with empty or flat
/// weights this degenerates to the equal-count split. The choice of
/// boundaries is deterministic in (weights, workers) and never affects
/// the merged trace — only which process pays for which groups.
std::vector<Slice> slice_groups(std::size_t groups, std::size_t workers,
                                const std::vector<double>& weights) {
  std::vector<double> w(groups, 1.0);
  if (weights.size() == groups)
    for (std::size_t g = 0; g < groups; ++g) w[g] = weights[g];
  std::vector<double> prefix(groups + 1, 0.0);
  for (std::size_t g = 0; g < groups; ++g) prefix[g + 1] = prefix[g] + w[g];
  const auto range = [&](std::size_t a, std::size_t b) {
    return prefix[b] - prefix[a];
  };
  // best[p][g]: minimal max-slice weight covering groups [0, g) with p
  // slices, every slice non-empty. cut[p][g]: the argmin boundary.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> best(
      workers + 1, std::vector<double>(groups + 1, kInf));
  std::vector<std::vector<std::size_t>> cut(
      workers + 1, std::vector<std::size_t>(groups + 1, 0));
  best[0][0] = 0.0;
  for (std::size_t p = 1; p <= workers; ++p) {
    for (std::size_t g = p; g <= groups - (workers - p); ++g) {
      for (std::size_t k = p - 1; k < g; ++k) {
        const double cand = std::max(best[p - 1][k], range(k, g));
        if (cand < best[p][g]) {
          best[p][g] = cand;
          cut[p][g] = k;
        }
      }
    }
  }
  std::vector<Slice> out(workers);
  std::size_t g = groups;
  for (std::size_t p = workers; p >= 1; --p) {
    const std::size_t k = cut[p][g];
    out[p - 1].first = k;
    out[p - 1].count = g - k;
    g = k;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Worker side.

/// The worker's EpochPeer: barriers over the control socket, finished
/// chunks to the local segment file. exchange() runs on the engine's
/// coordinator thread and write_chunk() on its writer thread; they touch
/// disjoint fds, so the two never race.
class WorkerPeer final : public EpochPeer {
 public:
  WorkerPeer(int socket_fd, const std::string& segment_path,
             std::uint32_t first_group)
      : fd_(socket_fd), first_group_(first_group) {
    seg_fd_ = ::open(segment_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (seg_fd_ < 0)
      throw std::runtime_error("distributed: cannot create segment file " +
                               segment_path);
  }
  ~WorkerPeer() override {
    if (seg_fd_ >= 0) ::close(seg_fd_);
  }

  BarrierIn exchange(std::uint64_t seq, bool tail,
                     std::vector<std::vector<std::uint8_t>> dedup_logs,
                     std::vector<std::vector<std::uint8_t>> pool_deltas,
                     std::vector<GuardFeedEntry> feed) override {
    EpochDoneMsg done;
    done.seq = seq;
    done.tail = tail;
    done.first_group = first_group_;
    done.dedup_logs = std::move(dedup_logs);
    done.pool_deltas = std::move(pool_deltas);
    done.feed = std::move(feed);
    send_frame(fd_, ProtoOp::kEpochDone, encode_epoch_done(done));

    std::span<const std::uint8_t> payload;
    ProtoOp op = recv_frame(fd_, rx_, payload);
    if (op == ProtoOp::kShutdown)
      throw std::runtime_error("distributed: coordinator shut down mid-run");
    if (op != ProtoOp::kEpochBegin)
      throw std::runtime_error("distributed: expected EpochBegin");
    EpochBeginMsg begin;
    if (const Status s = decode_epoch_begin(payload, begin); s != Status::kOk)
      throw_status("EpochBegin decode", s);
    if (begin.seq != seq || begin.tail != tail)
      throw std::runtime_error("distributed: EpochBegin out of sequence");

    op = recv_frame(fd_, rx_, payload);
    if (op != ProtoOp::kMailboxBatch)
      throw std::runtime_error("distributed: expected MailboxBatch");
    MailboxBatchMsg batch;
    if (const Status s = decode_mailbox_batch(payload, batch);
        s != Status::kOk)
      throw_status("MailboxBatch decode", s);
    if (batch.seq != seq)
      throw std::runtime_error("distributed: MailboxBatch out of sequence");

    BarrierIn in;
    in.dedup_logs = std::move(begin.dedup_logs);
    in.pool_deltas = std::move(begin.pool_deltas);
    in.purges = std::move(batch.entries);
    return in;
  }

  void write_chunk(
      const std::vector<std::vector<TraceRecord>>& chunks,
      const std::vector<std::vector<std::pair<Symbol, std::string>>>&
          new_symbols,
      std::size_t first_group, std::size_t group_count) override {
    buf_.clear();
    put_varint(buf_, chunk_seq_++);
    for (std::size_t i = 0; i < group_count; ++i) {
      const std::size_t g = first_group + i;
      put_varint(buf_, new_symbols[g].size());
      for (const auto& [sym, label] : new_symbols[g]) {
        put_varint(buf_, sym);
        put_varint(buf_, label.size());
        buf_.insert(buf_.end(), label.begin(), label.end());
      }
      const std::vector<TraceRecord>& chunk = chunks[g];
      put_varint(buf_, chunk.size());
      // Record payloads go straight from the engine's chunk buffer to
      // the fd — same segment bytes, no serialized copy. The bootstrap
      // chunk and the DDoS-hour epochs run to tens of MB per group; a
      // full byte-buffer copy of them sat on top of the worker's peak.
      flush_buf();
      write_exact(seg_fd_, chunk.data(), chunk.size() * sizeof(TraceRecord));
    }
    flush_buf();
  }

  void flush_buf() {
    if (buf_.empty()) return;
    write_exact(seg_fd_, buf_.data(), buf_.size());
    buf_.clear();
  }

  void close_segment() {
    if (seg_fd_ >= 0) {
      ::close(seg_fd_);
      seg_fd_ = -1;
    }
  }
  std::uint64_t chunks_written() const noexcept { return chunk_seq_; }

 private:
  int fd_;
  int seg_fd_ = -1;
  std::uint32_t first_group_;
  std::uint64_t chunk_seq_ = 0;
  std::vector<std::uint8_t> rx_;
  std::vector<std::uint8_t> buf_;
};

/// Whole worker-process lifetime: run the engine in worker mode, ship
/// the manifest, wait for the shutdown frame. Never throws — a failure
/// is reported to the coordinator as a Shutdown{1} frame and a nonzero
/// exit code.
int worker_main(const SimulationConfig& config, std::size_t threads,
                const Slice& slice, int fd,
                const std::string& segment_path) noexcept {
  try {
    NullSink null;
    ParallelSimulation sim(config, null, threads);
    WorkerPeer peer(fd, segment_path,
                    static_cast<std::uint32_t>(slice.first));
    sim.enable_worker_mode(peer, slice.first, slice.count);
    const SimulationReport rep = sim.run();
    peer.close_segment();

    const ChunkMetaMsg meta = pack_meta(rep, sim, peer.chunks_written());
    send_frame(fd, ProtoOp::kChunkMeta, encode_chunk_meta(meta));

    std::vector<std::uint8_t> rx;
    std::span<const std::uint8_t> payload;
    if (recv_frame(fd, rx, payload) != ProtoOp::kShutdown) return 2;
    ShutdownMsg bye;
    if (decode_shutdown(payload, bye) != Status::kOk) return 2;
    return static_cast<int>(bye.code);
  } catch (const std::exception& e) {
    ShutdownMsg err;
    err.code = 1;
    err.message = e.what();
    try {
      send_frame(fd, ProtoOp::kShutdown, encode_shutdown(err));
    } catch (...) {
    }
    return 1;
  } catch (...) {
    return 1;
  }
}

// ---------------------------------------------------------------------------
// Coordinator side.

struct Worker {
  pid_t pid = -1;
  int fd = -1;
  Slice slice;
  std::string segment_path;
  ChunkMetaMsg meta;
};

/// Kills and reaps every still-live child on scope exit, so a throw in
/// the middle of the relay never leaks worker processes.
class ChildReaper {
 public:
  explicit ChildReaper(std::vector<Worker>& workers) : workers_(workers) {}
  ~ChildReaper() {
    for (Worker& w : workers_) {
      if (w.fd >= 0) ::close(w.fd);
      w.fd = -1;
      if (w.pid > 0) {
        ::kill(w.pid, SIGKILL);
        int status = 0;
        ::waitpid(w.pid, &status, 0);
        w.pid = -1;
      }
    }
  }

 private:
  std::vector<Worker>& workers_;
};

EpochDoneMsg recv_epoch_done(Worker& w, std::vector<std::uint8_t>& rx,
                             std::uint64_t seq, bool tail) {
  std::span<const std::uint8_t> payload;
  const ProtoOp op = recv_frame(w.fd, rx, payload);
  if (op == ProtoOp::kShutdown) {
    ShutdownMsg err;
    (void)decode_shutdown(payload, err);
    throw std::runtime_error("distributed: worker failed: " + err.message);
  }
  if (op != ProtoOp::kEpochDone)
    throw std::runtime_error("distributed: expected EpochDone");
  EpochDoneMsg done;
  if (const Status s = decode_epoch_done(payload, done); s != Status::kOk)
    throw_status("EpochDone decode", s);
  if (done.seq != seq || done.tail != tail ||
      done.first_group != w.slice.first ||
      (!tail && (done.dedup_logs.size() != w.slice.count ||
                 done.pool_deltas.size() != w.slice.count)))
    throw std::runtime_error("distributed: EpochDone out of sequence");
  return done;
}

}  // namespace

std::size_t env_proc_count() {
  if (const char* v = std::getenv("U1SIM_PROCS")) {
    const long n = std::atol(v);
    if (n >= 1) return static_cast<std::size_t>(n);
  }
  return 1;
}

MailboxBatchMsg drain_to_batch(EpochMailbox<UserId>& mail, std::uint64_t seq) {
  MailboxBatchMsg batch;
  batch.seq = seq;
  mail.drain([&batch](std::size_t lane, UserId user) {
    batch.entries.push_back(
        MailboxEntry{static_cast<std::uint32_t>(lane), user.value});
  });
  return batch;
}

void post_batch(const MailboxBatchMsg& batch, EpochMailbox<UserId>& mail) {
  for (const MailboxEntry& e : batch.entries)
    mail.post(static_cast<std::size_t>(e.lane), UserId{e.value});
}

DistributedSimulation::DistributedSimulation(const SimulationConfig& config,
                                             TraceSink& sink,
                                             std::size_t procs,
                                             std::size_t threads)
    : config_(config),
      sink_(&sink),
      procs_(procs == 0 ? env_proc_count() : procs),
      threads_(threads == 0 ? 1 : threads) {
  if (config.backend.shards == 0)
    throw std::invalid_argument("DistributedSimulation: shards must be > 0");
  procs_ = std::min(procs_, static_cast<std::size_t>(config.backend.shards));
}

void DistributedSimulation::attach_analyzer(ShardedAnalyzer& analyzer) {
  if (ran_)
    throw std::logic_error(
        "DistributedSimulation::attach_analyzer: call before run()");
  analyzers_.push_back(&analyzer);
}

SimulationReport DistributedSimulation::run() {
  if (ran_) throw std::logic_error("DistributedSimulation::run: already ran");
  ran_ = true;
  return procs_ <= 1 ? run_inline() : run_forked();
}

SimulationReport DistributedSimulation::run_inline() {
  ParallelSimulation sim(config_, *sink_, threads_);
  for (ShardedAnalyzer* a : analyzers_) sim.attach_analyzer(*a);
  const SimulationReport rep = sim.run();
  records_flushed_ = sim.records_flushed();
  cross_group_dead_blobs_ = sim.cross_group_dead_blobs();
  worker_rss_kb_ = {peak_rss_kb()};
  return rep;
}

SimulationReport DistributedSimulation::run_forked() {
  const std::size_t n_groups = config_.backend.shards;
  const std::size_t n_workers = procs_;
  const std::vector<Slice> slices = slice_groups(
      n_groups, n_workers,
      ParallelSimulation::estimate_group_setup_weights(config_));

  char scratch_tmpl[] = "/tmp/u1dist.XXXXXX";
  if (::mkdtemp(scratch_tmpl) == nullptr)
    throw std::runtime_error("distributed: mkdtemp failed");
  const std::string scratch(scratch_tmpl);

  std::vector<Worker> workers(n_workers);
  ChildReaper reaper(workers);

  // Fork the fleet FIRST — before any engine state exists in this
  // process — so each child starts from a near-empty heap and its peak
  // RSS reflects only its own slice's steady state (plus the shared
  // setup replay). The coordinator never builds a simulation.
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers[w].slice = slices[w];
    workers[w].segment_path =
        scratch + "/worker-" + std::to_string(w) + ".seg";
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
      throw std::runtime_error("distributed: socketpair failed");
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw std::runtime_error("distributed: fork failed");
    }
    if (pid == 0) {
      // Child: drop every parent-side fd inherited so far, then run the
      // worker to completion. _exit skips atexit/static teardown — the
      // coordinator owns the process-wide resources.
      ::close(sv[0]);
      for (std::size_t p = 0; p < w; ++p)
        if (workers[p].fd >= 0) ::close(workers[p].fd);
      const int code = worker_main(config_, threads_, slices[w], sv[1],
                                   workers[w].segment_path);
      ::_exit(code);
    }
    ::close(sv[1]);
    workers[w].pid = pid;
    workers[w].fd = sv[0];
  }

  // --- Barrier relay. B non-tail barriers (one per simulated hour) and
  // the two run-tail exchanges; every worker hits every barrier in
  // lockstep, and the reply carries the cluster-wide replay set.
  const std::uint64_t non_tail = static_cast<std::uint64_t>(config_.days) * 24;
  const std::uint64_t total_barriers = non_tail + 2;

  const bool guard_on = config_.auto_countermeasures;
  AnomalyGuard guard;
  std::vector<std::unordered_set<UserId>> purge_seen(n_groups);
  std::vector<std::size_t> group_rank(n_groups);
  for (std::size_t w = 0; w < n_workers; ++w)
    for (std::size_t i = 0; i < slices[w].count; ++i)
      group_rank[slices[w].first + i] = w;
  std::vector<std::uint8_t> rx;

  for (std::uint64_t seq = 0; seq < total_barriers; ++seq) {
    const bool tail = seq >= non_tail;
    std::vector<EpochDoneMsg> dones;
    dones.reserve(n_workers);
    for (Worker& w : workers) dones.push_back(recv_epoch_done(w, rx, seq, tail));

    // Assemble the full-cluster replay set in group-index order.
    // Workers hold contiguous ascending slices, so concatenating their
    // lists in rank order IS group order.
    EpochBeginMsg begin;
    begin.seq = seq;
    begin.tail = tail;
    if (!tail) {
      begin.dedup_logs.reserve(n_groups);
      begin.pool_deltas.reserve(n_groups);
      for (EpochDoneMsg& done : dones) {
        for (auto& log : done.dedup_logs)
          begin.dedup_logs.push_back(std::move(log));
        for (auto& delta : done.pool_deltas)
          begin.pool_deltas.push_back(std::move(delta));
      }
    }

    // Cluster-wide anomaly detection: k-way merge the per-worker feeds
    // by (t, rank). Each feed is already in its worker's merged-stream
    // order and ranks own ascending group ranges, so the merged order
    // is the (t, group, emission) contract order — the exact sequence
    // the in-process guard observes. Route each culprit to its home
    // group's worker, deduped per group within the barrier (the same
    // purge_seen window the in-process scan uses).
    std::vector<MailboxBatchMsg> batches(n_workers);
    for (std::size_t w = 0; w < n_workers; ++w) batches[w].seq = seq;
    if (guard_on) {
      std::vector<std::size_t> cursor(n_workers, 0);
      for (;;) {
        std::size_t best = n_workers;
        for (std::size_t w = 0; w < n_workers; ++w) {
          if (cursor[w] >= dones[w].feed.size()) continue;
          if (best == n_workers ||
              dones[w].feed[cursor[w]].t < dones[best].feed[cursor[best]].t)
            best = w;
        }
        if (best == n_workers) break;
        const GuardFeedEntry& e = dones[best].feed[cursor[best]++];
        TraceRecord r{};
        r.t = e.t;
        r.user = UserId{e.user};
        r.type = RecordType::kSession;
        r.session_event = static_cast<SessionEvent>(e.session_event);
        if (const auto culprit = guard.observe(r)) {
          const std::size_t g = std::hash<UserId>{}(*culprit) % n_groups;
          if (purge_seen[g].insert(*culprit).second)
            batches[group_rank[g]].entries.push_back(
                MailboxEntry{static_cast<std::uint32_t>(g), culprit->value});
        }
      }
      for (auto& seen : purge_seen) seen.clear();
    }

    const std::vector<std::uint8_t> begin_payload = encode_epoch_begin(begin);
    for (std::size_t w = 0; w < n_workers; ++w) {
      send_frame(workers[w].fd, ProtoOp::kEpochBegin, begin_payload);
      send_frame(workers[w].fd, ProtoOp::kMailboxBatch,
                 encode_mailbox_batch(batches[w]));
    }
  }

  // --- Collect manifests, release the fleet.
  for (Worker& w : workers) {
    std::span<const std::uint8_t> payload;
    const ProtoOp op = recv_frame(w.fd, rx, payload);
    if (op == ProtoOp::kShutdown) {
      ShutdownMsg err;
      (void)decode_shutdown(payload, err);
      throw std::runtime_error("distributed: worker failed: " + err.message);
    }
    if (op != ProtoOp::kChunkMeta)
      throw std::runtime_error("distributed: expected ChunkMeta");
    if (const Status s = decode_chunk_meta(payload, w.meta); s != Status::kOk)
      throw_status("ChunkMeta decode", s);
    if (w.meta.counters.size() != kCtrCount ||
        w.meta.counters[kCtrChunks] != total_barriers)
      throw std::runtime_error("distributed: bad ChunkMeta manifest");
  }
  for (Worker& w : workers) {
    send_frame(w.fd, ProtoOp::kShutdown, encode_shutdown(ShutdownMsg{}));
    ::close(w.fd);
    w.fd = -1;
    int status = 0;
    const pid_t pid = w.pid;
    w.pid = -1;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0)
      throw std::runtime_error("distributed: worker exited abnormally");
  }

  // --- Segment readback: stream every worker's chunks in lockstep, one
  // chunk index at a time. Per chunk, replaying each group's new-symbol
  // list in (rank, local group) order == global group order reproduces
  // the oracle's global-symbol interning sequence exactly, so remapped
  // labels — and every Symbol-keyed analyzer sketch — match the
  // in-process run bit for bit.
  const bool write_trace = dynamic_cast<NullSink*>(sink_) == nullptr;
  std::vector<int> seg(n_workers, -1);
  struct SegCloser {
    std::vector<int>& fds;
    ~SegCloser() {
      for (int fd : fds)
        if (fd >= 0) ::close(fd);
    }
  } seg_closer{seg};
  for (std::size_t w = 0; w < n_workers; ++w) {
    seg[w] = ::open(workers[w].segment_path.c_str(), O_RDONLY);
    if (seg[w] < 0)
      throw std::runtime_error("distributed: cannot open segment " +
                               workers[w].segment_path);
  }

  std::vector<std::vector<Symbol>> wmap(n_workers);  // worker ids -> ours
  for (auto& m : wmap) m.assign(1, kEmptySymbol);
  std::vector<std::vector<std::unique_ptr<AnalyzerShard>>> shards(
      analyzers_.size());
  for (std::size_t a = 0; a < analyzers_.size(); ++a) {
    shards[a].reserve(n_groups);
    for (std::size_t g = 0; g < n_groups; ++g)
      shards[a].push_back(analyzers_[a]->make_shard());
  }

  std::uint64_t records_seen = 0;
  std::vector<std::vector<TraceRecord>> chunks(n_groups);
  std::vector<MergeRef> plan;
  std::string text;
  for (std::uint64_t b = 0; b < total_barriers; ++b) {
    for (std::size_t w = 0; w < n_workers; ++w) {
      if (get_varint(seg[w]) != b)
        throw std::runtime_error("distributed: segment chunk out of order");
      for (std::size_t i = 0; i < slices[w].count; ++i) {
        const std::size_t g = slices[w].first + i;
        const std::uint64_t n_syms = get_varint(seg[w]);
        for (std::uint64_t s = 0; s < n_syms; ++s) {
          const std::uint64_t wid = get_varint(seg[w]);
          const std::uint64_t len = get_varint(seg[w]);
          if (wid == 0 || wid > 0xffffffffull || len > (1u << 20))
            throw std::runtime_error("distributed: corrupt segment symbol");
          text.resize(len);
          read_exact(seg[w], text.data(), len);
          if (wid >= wmap[w].size()) wmap[w].resize(wid + 1, kEmptySymbol);
          wmap[w][wid] = global_symbols().intern(text);
        }
        const std::uint64_t n_records = get_varint(seg[w]);
        if (n_records > (1ull << 31))
          throw std::runtime_error("distributed: corrupt segment chunk");
        chunks[g].resize(n_records);
        read_exact(seg[w], chunks[g].data(),
                   n_records * sizeof(TraceRecord));
        for (TraceRecord& r : chunks[g]) {
          if (r.label == kEmptySymbol) continue;
          if (r.label >= wmap[w].size() || wmap[w][r.label] == kEmptySymbol)
            throw std::runtime_error("distributed: unmapped segment symbol");
          r.label = wmap[w][r.label];
        }
        records_seen += n_records;
      }
    }
    for (std::size_t a = 0; a < analyzers_.size(); ++a)
      for (std::size_t g = 0; g < n_groups; ++g)
        shards[a][g]->consume(chunks[g].data(), chunks[g].size());
    if (write_trace) {
      // Same maximal-run batching as the in-process stage B, so the
      // sink sees identical append_batch granularity and byte order.
      build_merge_plan(chunks, plan);
      const MergeRef* refs = plan.data();
      const std::size_t n = plan.size();
      for (std::size_t i = 0; i < n;) {
        const std::uint32_t group = refs[i].group;
        const std::uint32_t first = refs[i].offset;
        std::size_t j = i + 1;
        while (j < n && refs[j].group == group &&
               refs[j].offset == refs[j - 1].offset + 1)
          ++j;
        sink_->append_batch(&chunks[group][first], j - i);
        i = j;
      }
    }
    for (auto& chunk : chunks) chunk.clear();
  }
  for (std::size_t a = 0; a < analyzers_.size(); ++a) {
    for (std::size_t g = 0; g < n_groups; ++g)
      analyzers_[a]->merge_shard(*shards[a][g]);
    analyzers_[a]->finish();
  }

  for (std::size_t w = 0; w < n_workers; ++w) {
    ::close(seg[w]);
    seg[w] = -1;
    ::unlink(workers[w].segment_path.c_str());
  }
  ::rmdir(scratch.c_str());

  // --- Merge the per-worker reports. Per-group quantities sum; the
  // setup-replayed global quantities (bootstrap files, fault events,
  // cross-group GC) are identical in every worker — take rank 0's. The
  // first auto-response is the lexicographically first (barrier, group)
  // purge origin across workers, matching the in-process delivery order.
  SimulationReport rep;
  rep.users = config_.users;
  rep.horizon = static_cast<SimTime>(config_.days) * kDay;
  std::uint64_t best_barrier = ~0ull;
  std::uint64_t best_group = ~0ull;
  for (std::size_t w = 0; w < n_workers; ++w) {
    const std::vector<std::uint64_t>& c = workers[w].meta.counters;
    BackendStats stats;
    std::memcpy(static_cast<void*>(&stats), c.data(), sizeof(BackendStats));
    rep.backend += stats;
    rep.agent_wakeups += c[kCtrAgentWakeups];
    rep.ddos_attacks += c[kCtrDdosAttacks];
    rep.auto_purges += c[kCtrAutoPurges];
    records_flushed_ += c[kCtrRecords];
    worker_rss_kb_.push_back(c[kCtrPeakRssKb]);
    if (w == 0) {
      rep.bootstrap_files = c[kCtrBootstrapFiles];
      rep.fault_events = c[kCtrFaultEvents];
      cross_group_dead_blobs_ = c[kCtrCrossDead];
    }
    const std::uint64_t barrier = c[kCtrFirstPurgeBarrier];
    const std::uint64_t group = c[kCtrFirstPurgeGroup];
    if (barrier < best_barrier ||
        (barrier == best_barrier && group < best_group)) {
      best_barrier = barrier;
      best_group = group;
      rep.first_auto_response_delay = static_cast<SimTime>(c[kCtrFirstDelay]);
    }
  }
  if (records_seen != records_flushed_)
    throw std::runtime_error(
        "distributed: segment record count disagrees with worker manifests");
  return rep;
}

}  // namespace u1
