// Fig. 8: the desktop-client transition graph through API operations,
// with global transition probabilities for the main edges.
#include "analysis/transition_graph.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  TransitionGraphAnalyzer graph;
  auto sim = run_into(graph, cfg);

  header("Fig 8", "Client transition graph through API operations");
  std::printf("  heaviest edges (global transition probability):\n");
  std::printf("  %-20s -> %-20s %10s %10s\n", "from", "to", "P(global)",
              "P(to|from)");
  const auto edges = graph.edges();
  for (std::size_t i = 0; i < std::min<std::size_t>(14, edges.size()); ++i) {
    const auto& e = edges[i];
    std::printf("  %-20s -> %-20s %10.3f %10.3f\n",
                std::string(to_string(e.from)).c_str(),
                std::string(to_string(e.to)).c_str(), e.global_probability,
                graph.conditional(e.from, e.to));
  }
  auto global = [&](ApiOp from, ApiOp to) {
    for (const auto& e : edges)
      if (e.from == from && e.to == to) return e.global_probability;
    return 0.0;
  };
  std::printf("\n  key self-transitions, GLOBAL probabilities (the edge "
              "labels of Fig. 8):\n");
  row("P(Download -> Download)", 0.167,
      global(ApiOp::kGetContent, ApiOp::kGetContent));
  row("P(Upload -> Upload)", 0.135,
      global(ApiOp::kPutContent, ApiOp::kPutContent));
  row("P(GetDelta -> GetDelta)", 0.158,
      global(ApiOp::kGetDelta, ApiOp::kGetDelta));
  note("paper: after a transfer the next operation is very likely "
       "another transfer (directory-granularity sync, file editing)");
  return 0;
}
