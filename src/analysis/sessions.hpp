// Session & authentication analysis (paper §7.3, Fig. 15/16): auth and
// session-management request time-series, auth failure fraction, session
// length distribution (97% < 8h, 32% < 1s), active vs cold sessions
// (5.57% active) and storage operations per active session (80% <= 92 ops,
// top 20% of sessions = 96.7% of ops).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stats/timeseries.hpp"
#include "trace/sink.hpp"

namespace u1 {

class SessionAnalyzer final : public TraceSink {
 public:
  SessionAnalyzer(SimTime start, SimTime end);

  void append(const TraceRecord& record) override;

  // --- Fig. 15 ---------------------------------------------------------------
  const TimeBinSeries& auth_requests_hourly() const noexcept {
    return auth_;
  }
  const TimeBinSeries& session_requests_hourly() const noexcept {
    return session_reqs_;
  }
  /// Fraction of auth requests that failed (paper: 2.76%).
  double auth_failure_fraction() const;
  /// Average weekday-vs-weekend peak difference (paper: Monday max ~15%
  /// above weekends).
  double monday_weekend_peak_ratio() const;

  // --- Fig. 16 ---------------------------------------------------------------
  /// Lengths (seconds) of sessions closed inside the window.
  const std::vector<double>& session_lengths() const noexcept {
    return lengths_all_;
  }
  const std::vector<double>& active_session_lengths() const noexcept {
    return lengths_active_;
  }
  /// Storage ops per *active* session.
  const std::vector<double>& ops_per_active_session() const noexcept {
    return ops_active_;
  }
  /// Share of sessions that issued >= 1 storage op (paper: 5.57%).
  double active_session_fraction() const;
  double fraction_shorter_than(SimTime limit) const;
  /// Share of all storage ops carried by the busiest `top` fraction of
  /// active sessions (paper: top 20% -> 96.7%).
  double top_sessions_op_share(double top) const;

  std::uint64_t sessions_closed() const noexcept {
    return static_cast<std::uint64_t>(lengths_all_.size());
  }

 private:
  struct Live {
    SimTime opened = 0;
    std::uint64_t storage_ops = 0;
  };

  TimeBinSeries auth_;
  TimeBinSeries session_reqs_;
  std::uint64_t auth_requests_ = 0;
  std::uint64_t auth_failures_ = 0;
  std::unordered_map<SessionId, Live> live_;
  std::vector<double> lengths_all_;
  std::vector<double> lengths_active_;
  std::vector<double> ops_active_;
};

}  // namespace u1
