#include "stats/timeseries.hpp"

#include <algorithm>
#include <stdexcept>

namespace u1 {

TimeBinSeries::TimeBinSeries(SimTime start, SimTime end, SimTime bin_width)
    : start_(start), width_(bin_width) {
  if (end <= start || bin_width <= 0)
    throw std::invalid_argument("TimeBinSeries: bad range");
  const std::size_t n =
      static_cast<std::size_t>((end - start + bin_width - 1) / bin_width);
  values_.assign(n, 0.0);
}

void TimeBinSeries::add(SimTime t, double weight) noexcept {
  const std::size_t i = bin_of(t);
  if (i == npos) {
    ++dropped_;
    return;
  }
  values_[i] += weight;
}

void TimeBinSeries::merge(const TimeBinSeries& other) {
  if (start_ != other.start_ || width_ != other.width_ ||
      values_.size() != other.values_.size())
    throw std::invalid_argument("TimeBinSeries::merge: binning mismatch");
  for (std::size_t i = 0; i < values_.size(); ++i)
    values_[i] += other.values_[i];
  dropped_ += other.dropped_;
}

std::size_t TimeBinSeries::bin_of(SimTime t) const noexcept {
  if (t < start_) return npos;
  const std::size_t i = static_cast<std::size_t>((t - start_) / width_);
  return i < values_.size() ? i : npos;
}

double TimeBinSeries::value(std::size_t i) const {
  if (i >= values_.size()) throw std::out_of_range("TimeBinSeries::value");
  return values_[i];
}

SimTime TimeBinSeries::bin_start(std::size_t i) const {
  if (i >= values_.size()) throw std::out_of_range("TimeBinSeries::bin_start");
  return start_ + static_cast<SimTime>(i) * width_;
}

DistinctPerBin::DistinctPerBin(SimTime start, SimTime end, SimTime bin_width)
    : start_(start), width_(bin_width) {
  if (end <= start || bin_width <= 0)
    throw std::invalid_argument("DistinctPerBin: bad range");
  const std::size_t n =
      static_cast<std::size_t>((end - start + bin_width - 1) / bin_width);
  seen_.resize(n);
  dirty_.assign(n, false);
}

void DistinctPerBin::add(SimTime t, std::uint64_t entity_id) {
  if (t < start_) return;
  const std::size_t i = static_cast<std::size_t>((t - start_) / width_);
  if (i >= seen_.size()) return;
  auto& v = seen_[i];
  // Bursty workloads hit the same (bin, entity) repeatedly back-to-back.
  if (!v.empty() && v.back() == entity_id) return;
  v.push_back(entity_id);
  dirty_[i] = true;
}

void DistinctPerBin::add_interval(SimTime a, SimTime b,
                                  std::uint64_t entity_id) {
  if (b < a) std::swap(a, b);
  for (SimTime t = std::max(a, start_); t <= b; t += width_) {
    add(t, entity_id);
    if (t > b - width_ && t < b) add(b, entity_id);
  }
}

void DistinctPerBin::merge(const DistinctPerBin& other) {
  if (start_ != other.start_ || width_ != other.width_ ||
      seen_.size() != other.seen_.size())
    throw std::invalid_argument("DistinctPerBin::merge: binning mismatch");
  for (std::size_t i = 0; i < seen_.size(); ++i) {
    if (other.seen_[i].empty()) continue;
    seen_[i].insert(seen_[i].end(), other.seen_[i].begin(),
                    other.seen_[i].end());
    dirty_[i] = true;  // dedup on demand, as usual
  }
}

std::size_t DistinctPerBin::bins() const noexcept { return seen_.size(); }

void DistinctPerBin::dedup(std::size_t i) const {
  if (!dirty_[i]) return;
  auto& v = const_cast<std::vector<std::uint64_t>&>(seen_[i]);
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  dirty_[i] = false;
}

double DistinctPerBin::count(std::size_t i) const {
  if (i >= seen_.size()) throw std::out_of_range("DistinctPerBin::count");
  dedup(i);
  return static_cast<double>(seen_[i].size());
}

std::vector<double> DistinctPerBin::counts() const {
  std::vector<double> out;
  out.reserve(seen_.size());
  for (std::size_t i = 0; i < seen_.size(); ++i) out.push_back(count(i));
  return out;
}

SimTime DistinctPerBin::bin_start(std::size_t i) const {
  if (i >= seen_.size()) throw std::out_of_range("DistinctPerBin::bin_start");
  return start_ + static_cast<SimTime>(i) * width_;
}

}  // namespace u1
