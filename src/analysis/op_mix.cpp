#include "analysis/op_mix.hpp"

#include <algorithm>

namespace u1 {

void OpMixAnalyzer::append(const TraceRecord& r) {
  if (r.t < 0) return;
  if (r.type == RecordType::kSession) {
    if (r.session_event == SessionEvent::kOpen) ++opens_;
    if (r.session_event == SessionEvent::kClose) ++closes_;
    return;
  }
  if (r.type != RecordType::kStorageDone || r.failed) return;
  ++counts_[static_cast<std::size_t>(r.api_op)];
  ++total_;
}

std::vector<std::pair<ApiOp, std::uint64_t>> OpMixAnalyzer::ranked() const {
  std::vector<std::pair<ApiOp, std::uint64_t>> out;
  for (const ApiOp op : all_api_ops()) {
    const std::uint64_t c = count(op);
    if (c > 0) out.emplace_back(op, c);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

bool OpMixAnalyzer::data_ops_dominate() const {
  const std::uint64_t transfers =
      count(ApiOp::kPutContent) + count(ApiOp::kGetContent) +
      count(ApiOp::kUnlink) + count(ApiOp::kMake);
  const std::uint64_t bookkeeping =
      count(ApiOp::kListVolumes) + count(ApiOp::kListShares) +
      count(ApiOp::kQuerySetCaps);
  return transfers > bookkeeping;
}

}  // namespace u1
