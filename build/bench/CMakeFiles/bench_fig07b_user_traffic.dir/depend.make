# Empty dependencies file for bench_fig07b_user_traffic.
# This may be replaced when dependencies are built.
