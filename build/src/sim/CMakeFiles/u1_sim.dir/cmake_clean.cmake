file(REMOVE_RECURSE
  "CMakeFiles/u1_sim.dir/client_agent.cpp.o"
  "CMakeFiles/u1_sim.dir/client_agent.cpp.o.d"
  "CMakeFiles/u1_sim.dir/simulation.cpp.o"
  "CMakeFiles/u1_sim.dir/simulation.cpp.o.d"
  "libu1_sim.a"
  "libu1_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
