#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "trace/logfile.hpp"
#include "trace/sink.hpp"

namespace u1 {
namespace {

TraceRecord record_at(SimTime t, std::uint64_t machine = 1,
                      std::uint64_t process = 1) {
  TraceRecord r;
  r.t = t;
  r.type = RecordType::kStorage;
  r.api_op = ApiOp::kMake;
  r.machine = MachineId{machine};
  r.process = ProcessId{process};
  r.user = UserId{1};
  r.session = SessionId{1};
  return r;
}

TEST(Sinks, InMemoryKeepsAll) {
  InMemorySink sink;
  sink.append(record_at(1));
  sink.append(record_at(2));
  EXPECT_EQ(sink.records().size(), 2u);
  sink.clear();
  EXPECT_TRUE(sink.records().empty());
}

TEST(Sinks, MultiFanOut) {
  InMemorySink a, b;
  CountingSink c;
  MultiSink multi;
  multi.add(&a);
  multi.add(&b);
  multi.add(&c);
  EXPECT_EQ(multi.sink_count(), 3u);
  multi.append(record_at(1));
  EXPECT_EQ(a.records().size(), 1u);
  EXPECT_EQ(b.records().size(), 1u);
  EXPECT_EQ(c.total(), 1u);
  EXPECT_THROW(multi.add(nullptr), std::invalid_argument);
}

TEST(Sinks, CountingByType) {
  CountingSink sink;
  TraceRecord r = record_at(1);
  sink.append(r);
  r.type = RecordType::kRpc;
  sink.append(r);
  sink.append(r);
  EXPECT_EQ(sink.total(), 3u);
  EXPECT_EQ(sink.count(RecordType::kStorage), 1u);
  EXPECT_EQ(sink.count(RecordType::kRpc), 2u);
  EXPECT_EQ(sink.count(RecordType::kSession), 0u);
}

// Regression: by_type_ used to have 4 slots while RecordType has 5
// values — appending a kFault record indexed past the array. The array
// is now sized from the enum; every type must count without UB.
TEST(Sinks, CountingCoversEveryRecordType) {
  CountingSink sink;
  TraceRecord r = record_at(1);
  for (std::size_t i = 0; i < kRecordTypeCount; ++i) {
    r.type = static_cast<RecordType>(i);
    sink.append(r);
  }
  EXPECT_EQ(sink.total(), kRecordTypeCount);
  for (std::size_t i = 0; i < kRecordTypeCount; ++i)
    EXPECT_EQ(sink.count(static_cast<RecordType>(i)), 1u);
  EXPECT_EQ(sink.count(RecordType::kFault), 1u);
}

TEST(Sinks, CallbackInvoked) {
  int calls = 0;
  CallbackSink sink([&](const TraceRecord&) { ++calls; });
  sink.append(record_at(1));
  EXPECT_EQ(calls, 1);
  EXPECT_THROW(CallbackSink(nullptr), std::invalid_argument);
}

class LogfileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("u1sim_logtest_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(LogfileTest, WriterShardsByMachineProcessDay) {
  LogfileWriter writer(dir_);
  writer.append(record_at(kHour, 1, 1));
  writer.append(record_at(2 * kHour, 1, 1));   // same file
  writer.append(record_at(kHour, 1, 2));       // different process
  writer.append(record_at(kDay + kHour, 1, 1));  // next day
  writer.append(record_at(kHour, 2, 7));       // different machine
  writer.close();
  EXPECT_EQ(writer.files_written(), 0u);  // closed
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    ++files;
    EXPECT_TRUE(e.path().filename().string().starts_with("production-"));
  }
  EXPECT_EQ(files, 4u);
}

TEST_F(LogfileTest, RoundTripThroughDirectory) {
  {
    LogfileWriter writer(dir_);
    writer.append(record_at(3 * kHour, 2, 9));
    writer.append(record_at(kHour, 1, 1));
    writer.append(record_at(2 * kHour, 1, 2));
  }
  InMemorySink sink;
  const ReadStats stats = read_logfiles(dir_, sink);
  EXPECT_EQ(stats.files, 3u);
  EXPECT_EQ(stats.parsed, 3u);
  EXPECT_EQ(stats.malformed, 0u);
  ASSERT_EQ(sink.records().size(), 3u);
  // Merged in timestamp order.
  EXPECT_EQ(sink.records()[0].t, kHour);
  EXPECT_EQ(sink.records()[1].t, 2 * kHour);
  EXPECT_EQ(sink.records()[2].t, 3 * kHour);
}

TEST_F(LogfileTest, MalformedLinesCountedNotFatal) {
  {
    LogfileWriter writer(dir_);
    writer.append(record_at(kHour));
  }
  // Corrupt the file by appending garbage (the paper: ~1% of lines failed
  // to parse).
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    std::ofstream f(e.path(), std::ios::app);
    f << "garbage,line\n";
    f << "\"unterminated\n";
  }
  InMemorySink sink;
  const ReadStats stats = read_logfiles(dir_, sink);
  EXPECT_EQ(stats.parsed, 1u);
  EXPECT_EQ(stats.malformed, 2u);
  EXPECT_EQ(sink.records().size(), 1u);
}

TEST_F(LogfileTest, NonProductionFilesIgnored) {
  std::filesystem::create_directories(dir_);
  std::ofstream(dir_ / "README.txt") << "not a log\n";
  InMemorySink sink;
  const ReadStats stats = read_logfiles(dir_, sink);
  EXPECT_EQ(stats.files, 0u);
  EXPECT_TRUE(sink.records().empty());
}

TEST_F(LogfileTest, ReadMissingFileThrows) {
  std::vector<TraceRecord> out;
  EXPECT_THROW(read_logfile(dir_ / "missing.csv", out), std::runtime_error);
}

}  // namespace
}  // namespace u1
