#include "stats/gini.hpp"

#include <algorithm>
#include <stdexcept>

namespace u1 {

double LorenzCurve::top_share(double top_fraction) const {
  if (top_fraction <= 0.0 || top_fraction > 1.0)
    throw std::domain_error("LorenzCurve::top_share: fraction not in (0,1]");
  const double x = 1.0 - top_fraction;
  // Find the Lorenz value at population share x by linear interpolation.
  auto it = std::lower_bound(
      points.begin(), points.end(), x,
      [](const std::pair<double, double>& p, double v) { return p.first < v; });
  if (it == points.begin()) return 1.0 - it->second;
  if (it == points.end()) return 0.0;
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = hi.first - lo.first;
  const double frac = span > 0 ? (x - lo.first) / span : 0.0;
  const double value_at_x = lo.second + frac * (hi.second - lo.second);
  return 1.0 - value_at_x;
}

LorenzCurve lorenz(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("lorenz: empty input");
  std::vector<double> v(values.begin(), values.end());
  for (const double x : v)
    if (x < 0) throw std::invalid_argument("lorenz: negative value");
  std::sort(v.begin(), v.end());

  double total = 0;
  for (const double x : v) total += x;

  LorenzCurve curve;
  curve.points.reserve(v.size() + 1);
  curve.points.emplace_back(0.0, 0.0);
  const double n = static_cast<double>(v.size());
  double cum = 0;
  // Gini via the trapezoid formula: G = 1 - 2 * area under Lorenz curve.
  double area2 = 0;  // twice the area
  double prev_share = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    cum += v[i];
    const double pop = static_cast<double>(i + 1) / n;
    const double share = total > 0 ? cum / total : pop;
    curve.points.emplace_back(pop, share);
    area2 += (share + prev_share) * (1.0 / n);
    prev_share = share;
  }
  curve.gini = 1.0 - area2;
  return curve;
}

double gini(std::span<const double> values) { return lorenz(values).gini; }

}  // namespace u1
