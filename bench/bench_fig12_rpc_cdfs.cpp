// Fig. 12: distribution of RPC service times accessing the metadata
// store, in the paper's three panels (file-system management, upload
// management, other read-only RPCs), with long-tail quantification.
#include "analysis/rpc_perf.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"

namespace {

void print_panel(const char* title, std::initializer_list<u1::RpcOp> ops,
                 const u1::RpcPerfAnalyzer& rpcs) {
  std::printf("\n  %s:\n", title);
  std::printf("  %-34s %9s %9s %9s %9s %8s\n", "rpc", "p50(ms)", "p90(ms)",
              "p99(ms)", "max(s)", "tail%");
  for (const u1::RpcOp op : ops) {
    auto times = rpcs.service_times(op);
    if (times.size() < 10) continue;
    u1::Ecdf e{std::move(times)};
    std::printf("  %-34s %9.2f %9.2f %9.2f %9.2f %7.1f%%\n",
                std::string(to_string(op)).c_str(),
                e.quantile(0.5) * 1e3, e.quantile(0.9) * 1e3,
                e.quantile(0.99) * 1e3, e.max(),
                rpcs.tail_fraction(op) * 100);
  }
}

}  // namespace

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  RpcPerfAnalyzer rpcs;
  auto sim = run_into(rpcs, cfg);

  header("Fig 12", "RPC service time distributions (metadata store)");
  print_panel("(a) file system management",
              {RpcOp::kCreateUDF, RpcOp::kDeleteVolume, RpcOp::kGetVolumeId,
               RpcOp::kListShares, RpcOp::kListVolumes, RpcOp::kMakeDir,
               RpcOp::kMakeFile, RpcOp::kMove, RpcOp::kUnlinkNode,
               RpcOp::kGetDelta},
              rpcs);
  print_panel("(b) upload management",
              {RpcOp::kAddPartToUploadJob, RpcOp::kDeleteUploadJob,
               RpcOp::kGetReusableContent, RpcOp::kGetUploadJob,
               RpcOp::kMakeContent, RpcOp::kMakeUploadJob,
               RpcOp::kSetUploadJobMultipartId, RpcOp::kTouchUploadJob},
              rpcs);
  print_panel("(c) other read-only RPCs",
              {RpcOp::kGetUserIdFromToken, RpcOp::kGetFromScratch,
               RpcOp::kGetNode, RpcOp::kGetRoot, RpcOp::kGetUserData},
              rpcs);
  std::printf("\n");
  row("tail share far from median (paper range 7-22%)", 0.145,
      rpcs.tail_fraction(RpcOp::kMakeFile));
  note("paper: all RPCs exhibit long service-time tails, caused by "
       "hardware/OS/application-level interference (Li et al., SoCC'14)");
  return 0;
}
