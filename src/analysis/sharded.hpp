// Sharded streaming analysis: the in-worker fan-out contract between
// analyzers and the shard-parallel engine.
//
// The merged-stream path (every analyzer is a TraceSink fed by stage B)
// is exact but serial — one thread walks every record of the run, and
// per-entity state grows O(records). A ShardedAnalyzer instead hands the
// engine one AnalyzerShard per shard group; stage A feeds each shard its
// group's records (sorted, labels already remapped to global symbol
// ids) on the flush-pipeline threads, overlapping the next epoch's
// compute. At the end of the run the engine folds the shards back with
// merge_shard() in group-index order — a thread-count-independent order
// over thread-count-independent per-group streams, so the merged results
// are bit-identical at any worker count.
//
// Correctness lean: users, sessions and nodes are disjoint across shard
// groups (group_of hashes the user id, and every session/node belongs
// to one user), so per-entity state partitions exactly; only the
// sketch-backed distribution summaries carry approximation error, and
// U1SIM_ANALYSIS=merged keeps the exact path as the small-scale oracle.
#pragma once

#include <cstdint>
#include <memory>

#include "trace/record.hpp"

namespace u1 {

/// One shard group's slice of an analyzer's state. Built by
/// ShardedAnalyzer::make_shard(), fed whole per-group chunks, folded
/// back with merge_shard(). Never touched by two threads at once: the
/// engine guarantees at most one stage A is in flight and each chunk is
/// claimed by exactly one prep thread.
class AnalyzerShard {
 public:
  virtual ~AnalyzerShard() = default;

  /// Consumes `count` records of this shard group's stream — sorted by
  /// timestamp within the chunk, chunks arriving in epoch order, labels
  /// already global.
  virtual void consume(const TraceRecord* records, std::size_t count) = 0;
};

/// An analyzer that can run sharded. Implementations typically also
/// derive from TraceSink (the exact merged-stream path); which path
/// filled the analyzer decides which accessors are exact vs
/// sketch-backed.
class ShardedAnalyzer {
 public:
  virtual ~ShardedAnalyzer() = default;

  /// A fresh, empty shard. Called once per shard group before the run.
  virtual std::unique_ptr<AnalyzerShard> make_shard() = 0;

  /// Folds one shard's state into the analyzer. The engine calls this
  /// exactly once per shard, in group-index order, after the last
  /// record has been consumed. The shard may be cannibalized (moved
  /// from).
  virtual void merge_shard(AnalyzerShard& shard) = 0;

  /// Called once after every shard has merged; close the books here
  /// (e.g. count still-open sessions).
  virtual void finish() {}
};

/// Which analysis path a bench/test should run.
enum class AnalysisMode : std::uint8_t {
  kMerged,   // exact serial TraceSink pass over the merged stream
  kSharded,  // in-worker shard fan-out + sketch summaries
};

/// U1SIM_ANALYSIS=sharded|merged (default sharded — the scalable path;
/// the merged oracle is opt-in for small-scale comparisons). Throws
/// std::runtime_error on any other value.
AnalysisMode analysis_mode_from_env();

const char* to_string(AnalysisMode mode) noexcept;

}  // namespace u1
