
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig03a_after_write.cpp" "bench/CMakeFiles/bench_fig03a_after_write.dir/bench_fig03a_after_write.cpp.o" "gcc" "bench/CMakeFiles/bench_fig03a_after_write.dir/bench_fig03a_after_write.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/u1_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/u1_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/u1_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/u1_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/u1_server.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/u1_store.dir/DependInfo.cmake"
  "/root/repo/build/src/cloudstore/CMakeFiles/u1_cloudstore.dir/DependInfo.cmake"
  "/root/repo/build/src/auth/CMakeFiles/u1_auth.dir/DependInfo.cmake"
  "/root/repo/build/src/mq/CMakeFiles/u1_mq.dir/DependInfo.cmake"
  "/root/repo/build/src/improve/CMakeFiles/u1_improve.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/u1_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/u1_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/u1_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
