#include "improve/push_pull.hpp"

#include <stdexcept>

namespace u1 {

PushPullPolicy::PushPullPolicy(const PushPullConfig& config)
    : config_(config) {
  if (config.active_threshold < 0 || config.alpha <= 0 ||
      config.alpha > 1 || config.poll_interval <= 0 ||
      config.grace_sessions < 0)
    throw std::invalid_argument("PushPullConfig: invalid");
}

SessionMode PushPullPolicy::decide(UserId user) const {
  const auto it = users_.find(user);
  if (it == users_.end()) return SessionMode::kPush;  // unknown: grace
  if (it->second.sessions < config_.grace_sessions) return SessionMode::kPush;
  return it->second.ewma_ops > config_.active_threshold ? SessionMode::kPush
                                                        : SessionMode::kPull;
}

void PushPullPolicy::report_session(UserId user, std::uint64_t storage_ops,
                                    SimTime length) {
  const SessionMode mode = decide(user);
  if (mode == SessionMode::kPull) {
    ++pull_sessions_;
    // The connection would have been dropped after the handshake; the
    // entire remaining session length is a saved slot.
    saved_hours_ += to_seconds(length) / 3600.0;
    if (storage_ops > 0) ++mispredicted_;
  } else {
    ++push_sessions_;
  }
  UserState& state = users_[user];
  state.ewma_ops = (1.0 - config_.alpha) * state.ewma_ops +
                   config_.alpha * static_cast<double>(storage_ops);
  ++state.sessions;
}

double PushPullPolicy::activity_estimate(UserId user) const {
  const auto it = users_.find(user);
  return it == users_.end() ? 0.0 : it->second.ewma_ops;
}

}  // namespace u1
