// Multi-process shard distribution (DESIGN.md §12): a coordinator that
// forks N worker processes, each running a ParallelSimulation in worker
// mode over a contiguous slice of the shard groups, synchronized at the
// hourly epoch barriers over the length-prefixed control plane
// (proto/control.hpp). Process and thread parallelism compose — each
// worker runs its slice with its own worker-thread pool — and the merged
// trace plus every sharded-analyzer figure is bit-identical to the
// in-process engine for ANY (procs, threads) split; the 1×1 run is the
// oracle.
//
// Topology per run (procs > 1):
//
//   coordinator ── socketpair ── worker 0   groups [0, k0)
//              ├── socketpair ── worker 1   groups [k0, k1)
//              └── socketpair ── worker W-1 groups [.., G)
//
// The coordinator forks before any heavy allocation and never builds an
// engine of its own; each worker replays the full deterministic setup
// (every master-RNG draw) and then frees the remote groups' state, so
// per-process peak RSS drops roughly 1/P once the month's live state
// dominates the setup replay. Workers write their trace-chunk segments
// to local scratch files — only barrier control traffic and the final
// ChunkMeta manifest cross the sockets — and the coordinator k-way
// merges the segments at close, replaying each chunk's new-symbol lists
// in group order so its global symbol ids match the oracle's bit for
// bit (analysis/file_types.cpp keys a sketch by raw Symbol id).
//
// Barrier sequence (one line per control frame; B = days*24):
//
//   worker  ──EpochDone{seq, local logs+deltas, guard feed}──▶ coordinator
//   worker  ◀──EpochBegin{seq, ALL groups' logs+deltas}────── coordinator
//   worker  ◀──MailboxBatch{seq, purges routed to my lanes}── coordinator
//     × (B non-tail + 2 tail barriers)
//   worker  ──ChunkMeta{report counters, peak RSS, timings}─▶ coordinator
//   worker  ◀──Shutdown{0}───────────────────────────────── coordinator
//
// The AnomalyGuard runs on the coordinator: workers ship the minimal
// observation feed (already in per-worker merged order), the coordinator
// k-way merges the feeds into the cluster-wide (t, group) order, runs
// detection, and routes each purge to the culprit's home worker — the
// same detection points and delivery barriers as the in-process engine.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/control.hpp"
#include "sim/mailbox.hpp"
#include "sim/parallel.hpp"
#include "sim/simulation.hpp"
#include "trace/sink.hpp"

namespace u1 {

/// Worker-process count from U1SIM_PROCS (>= 1; unset/invalid -> 1).
std::size_t env_proc_count();

/// Bridges between the in-process EpochMailbox and the wire MailboxBatch
/// frame. drain_to_batch empties the mailbox into a batch (lane order,
/// ring before spill — the deterministic drain order); post_batch posts
/// every entry back, preserving order. Round-tripping through these is
/// how the coordinator's purge routing reaches a worker's mailbox.
MailboxBatchMsg drain_to_batch(EpochMailbox<UserId>& mail, std::uint64_t seq);
void post_batch(const MailboxBatchMsg& batch, EpochMailbox<UserId>& mail);

/// Coordinator front end. Mirrors ParallelSimulation's surface (run once,
/// attach analyzers before run, records_flushed for bench rates) and
/// delegates to a plain in-process ParallelSimulation when procs <= 1.
class DistributedSimulation {
 public:
  /// procs == 0 resolves U1SIM_PROCS (default 1); clamped to the group
  /// count. `threads` is the per-worker thread-pool size (1 = inline
  /// oracle schedule inside each worker).
  DistributedSimulation(const SimulationConfig& config, TraceSink& sink,
                        std::size_t procs = 0, std::size_t threads = 1);

  DistributedSimulation(const DistributedSimulation&) = delete;
  DistributedSimulation& operator=(const DistributedSimulation&) = delete;

  /// Forks the workers, relays the barriers, merges the trace segments
  /// into the sink and returns the merged report. Call once.
  SimulationReport run();

  /// Registers a sharded analyzer (before run()). Shards are fed on the
  /// coordinator during segment readback, per group in chunk order —
  /// the same per-group streams, in the same order, as the in-process
  /// engine's stage A.
  void attach_analyzer(ShardedAnalyzer& analyzer);

  std::size_t proc_count() const noexcept { return procs_; }
  std::size_t threads() const noexcept { return threads_; }

  /// Total records the workers handed to their flush pipelines (== the
  /// in-process engine's records_flushed for the same config).
  std::uint64_t records_flushed() const noexcept { return records_flushed_; }
  std::uint64_t cross_group_dead_blobs() const noexcept {
    return cross_group_dead_blobs_;
  }

  /// Per-worker peak RSS (ru_maxrss, KiB) reported in each ChunkMeta;
  /// one entry per worker process (one entry for the whole process when
  /// procs <= 1). The bench records these for the 1/P memory claim.
  const std::vector<std::uint64_t>& worker_peak_rss_kb() const noexcept {
    return worker_rss_kb_;
  }

 private:
  SimulationReport run_inline();
  SimulationReport run_forked();

  SimulationConfig config_;
  TraceSink* sink_;
  std::size_t procs_;
  std::size_t threads_;
  std::vector<ShardedAnalyzer*> analyzers_;
  std::uint64_t records_flushed_ = 0;
  std::uint64_t cross_group_dead_blobs_ = 0;
  std::vector<std::uint64_t> worker_rss_kb_;
  bool ran_ = false;
};

}  // namespace u1
