#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace u1 {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::cv() const noexcept {
  return mean_ != 0.0 ? stddev() / mean_ : 0.0;
}

namespace {

double quantile_sorted(const std::vector<double>& s, double q) {
  if (s.size() == 1) return s[0];
  const double pos = q * static_cast<double>(s.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= s.size()) return s.back();
  const double frac = pos - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

}  // namespace

BoxplotStats boxplot(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("boxplot: empty sample");
  std::vector<double> s(sample.begin(), sample.end());
  std::sort(s.begin(), s.end());
  BoxplotStats b;
  b.min = s.front();
  b.max = s.back();
  b.q1 = quantile_sorted(s, 0.25);
  b.median = quantile_sorted(s, 0.50);
  b.q3 = quantile_sorted(s, 0.75);
  double sum = 0;
  for (const double x : s) sum += x;
  b.mean = sum / static_cast<double>(s.size());
  return b;
}

double mean_of(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("mean_of: empty sample");
  double sum = 0;
  for (const double x : sample) sum += x;
  return sum / static_cast<double>(sample.size());
}

double median_of(std::span<const double> sample) {
  if (sample.empty()) throw std::invalid_argument("median_of: empty sample");
  std::vector<double> s(sample.begin(), sample.end());
  std::sort(s.begin(), s.end());
  return quantile_sorted(s, 0.5);
}

}  // namespace u1
