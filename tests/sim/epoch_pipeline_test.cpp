// Epoch-pipeline overhaul invariants: the k-way trace merge must
// reproduce the old stable_sort total order exactly; the calendar queue
// must pop in the binary heap's exact order (FIFO ties included); the
// sticky scheduler and the pipelined flusher must leave the merged trace
// byte-identical; and the bounded MPSC mailbox must drain
// deterministically.
#include <algorithm>
#include <cstddef>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/mailbox.hpp"
#include "sim/parallel.hpp"
#include "sim/trace_merge.hpp"
#include "trace/sink.hpp"
#include "util/rng.hpp"

namespace u1 {
namespace {

// --------------------------------------------------------------------------
// K-way merge vs the old concat + stable_sort.

TraceRecord record_at(SimTime t, std::uint64_t tag) {
  TraceRecord r;
  r.t = t;
  r.user = UserId{tag};  // payload marker so order mix-ups are visible
  return r;
}

std::string key(const TraceRecord& r) {
  return std::to_string(r.t) + "/" + std::to_string(r.user.value);
}

TEST(TraceMerge, MatchesStableSortOnTieHeavyChunks) {
  // Heavy ties: timestamps drawn from just 16 values across 7 chunks, so
  // nearly every pop breaks a tie. The old pipeline concatenated chunks
  // in group order and stable_sorted by t; the k-way merge must emit the
  // exact same sequence.
  Rng rng(7u);
  std::vector<std::vector<TraceRecord>> chunks(7);
  std::uint64_t tag = 0;
  for (auto& chunk : chunks) {
    const std::size_t n = rng.below(400);
    for (std::size_t i = 0; i < n; ++i)
      chunk.push_back(record_at(static_cast<SimTime>(rng.below(16)), tag++));
  }

  std::vector<TraceRecord> reference;
  for (const auto& chunk : chunks)
    reference.insert(reference.end(), chunk.begin(), chunk.end());
  std::stable_sort(reference.begin(), reference.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.t < b.t;
                   });

  for (auto& chunk : chunks) sort_trace_chunk(chunk);
  std::vector<TraceRecord> merged;
  merge_trace_chunks(chunks, [&](const TraceRecord& r) {
    merged.push_back(r);
  });

  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < merged.size(); ++i)
    ASSERT_EQ(key(merged[i]), key(reference[i])) << "divergence at " << i;
}

TEST(TraceMerge, HandlesUnsortedChunksAndEmptyChunks) {
  // Per-group chunks are only *nearly* sorted (service-time lookahead
  // stamps records ahead of the event clock); sort_trace_chunk must
  // restore order without disturbing equal-timestamp emission order.
  std::vector<std::vector<TraceRecord>> chunks(4);
  chunks[1] = {record_at(50, 0), record_at(10, 1), record_at(50, 2),
               record_at(10, 3)};
  chunks[3] = {record_at(10, 4), record_at(50, 5)};
  for (auto& chunk : chunks) sort_trace_chunk(chunk);
  std::vector<std::string> got;
  merge_trace_chunks(chunks, [&](const TraceRecord& r) {
    got.push_back(key(r));
  });
  // t=10: chunk 1 keeps (1,3) emission order, then chunk 3's 4;
  // t=50: chunk 1's (0,2), then chunk 3's 5.
  const std::vector<std::string> want = {"10/1", "10/3", "10/4",
                                         "50/0", "50/2", "50/5"};
  EXPECT_EQ(got, want);
}

TEST(TraceMerge, PlanIsIndexPermutationOverChunks) {
  // The plan must reference every record exactly once, in the contract
  // order, without touching the chunks — stage A (guard scan) and stage
  // B (sink writes) both walk it independently.
  Rng rng(21u);
  std::vector<std::vector<TraceRecord>> chunks(5);
  std::uint64_t tag = 0;
  for (auto& chunk : chunks) {
    const std::size_t n = rng.below(200);
    for (std::size_t i = 0; i < n; ++i)
      chunk.push_back(record_at(static_cast<SimTime>(rng.below(32)), tag++));
  }
  for (auto& chunk : chunks) sort_trace_chunk(chunk);
  std::vector<MergeRef> plan;
  build_merge_plan(chunks, plan);
  std::size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  ASSERT_EQ(plan.size(), total);
  std::vector<std::vector<bool>> seen(chunks.size());
  for (std::size_t g = 0; g < chunks.size(); ++g)
    seen[g].assign(chunks[g].size(), false);
  SimTime last = std::numeric_limits<SimTime>::min();
  for (const MergeRef ref : plan) {
    ASSERT_LT(ref.group, chunks.size());
    ASSERT_LT(ref.offset, chunks[ref.group].size());
    EXPECT_FALSE(seen[ref.group][ref.offset]) << "duplicate ref";
    seen[ref.group][ref.offset] = true;
    const SimTime t = chunks[ref.group][ref.offset].t;
    EXPECT_LE(last, t) << "plan not time-ordered";
    last = t;
  }
}

// --------------------------------------------------------------------------
// Calendar queue vs binary heap: identical pop order, FIFO ties included.

void expect_same_pop_order(const std::vector<SimTime>& pushes,
                           double pop_prob, std::uint64_t seed) {
  EventQueue<std::uint64_t> heap(QueueImpl::kBinaryHeap);
  EventQueue<std::uint64_t> calendar(QueueImpl::kCalendar);
  Rng rng(seed);
  std::uint64_t tag = 0;
  std::size_t checked = 0;
  const auto pop_both = [&] {
    const SimTime t_heap = heap.next_time();
    const SimTime t_cal = calendar.next_time();
    ASSERT_EQ(t_heap, t_cal) << "next_time diverged after " << checked;
    const auto a = heap.pop();
    const auto b = calendar.pop();
    ASSERT_EQ(a.t, b.t) << "timestamp diverged at pop " << checked;
    ASSERT_EQ(a.payload, b.payload)
        << "FIFO tie-break diverged at pop " << checked << " (t=" << a.t
        << ")";
    ++checked;
  };
  for (const SimTime t : pushes) {
    heap.push(t, tag);
    calendar.push(t, tag);
    ++tag;
    // Interleave pops so the calendar's cursor/resize machinery runs in
    // mid-stream states, not just on a fully built queue.
    if (!heap.empty() && rng.chance(pop_prob)) pop_both();
  }
  while (!heap.empty()) pop_both();
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(checked, pushes.size());
}

TEST(CalendarQueue, MatchesHeapOnDenseTies) {
  // 5k events over 40 distinct timestamps: ties dominate, the FIFO seq
  // tie-break carries the whole order.
  Rng rng(11u);
  std::vector<SimTime> pushes;
  for (int i = 0; i < 5000; ++i)
    pushes.push_back(static_cast<SimTime>(rng.below(40)) * kSecond);
  expect_same_pop_order(pushes, 0.4, 99u);
}

TEST(CalendarQueue, MatchesHeapOnMixedWorkload) {
  // Simulation-shaped: a drifting "now" with exponential-ish forward
  // jumps, occasional far-future events (maintenance, attacks).
  Rng rng(12u);
  std::vector<SimTime> pushes;
  SimTime now = 0;
  for (int i = 0; i < 8000; ++i) {
    now += static_cast<SimTime>(rng.below(30 * kSecond));
    SimTime t = now;
    if (rng.chance(0.05)) t += static_cast<SimTime>(rng.below(2 * kDay));
    pushes.push_back(t);
  }
  expect_same_pop_order(pushes, 0.5, 100u);
}

TEST(CalendarQueue, MatchesHeapOnSparseGaps) {
  // Huge gaps force the calendar's empty-year fallback scan and width
  // re-estimation.
  Rng rng(13u);
  std::vector<SimTime> pushes;
  for (int i = 0; i < 600; ++i)
    pushes.push_back(static_cast<SimTime>(rng.below(400) * 90 * kDay));
  expect_same_pop_order(pushes, 0.2, 101u);
}

TEST(CalendarQueue, MatchesHeapOnNegativeTimestamps) {
  // Bootstrap events run at t < 0; floor division must keep negative
  // buckets ordered.
  Rng rng(14u);
  std::vector<SimTime> pushes;
  for (int i = 0; i < 3000; ++i)
    pushes.push_back(static_cast<SimTime>(rng.below(8 * kDay)) - 4 * kDay);
  expect_same_pop_order(pushes, 0.3, 102u);
}

TEST(CalendarQueue, SetImplRequiresEmptyQueue) {
  EventQueue<int> q(QueueImpl::kBinaryHeap);
  q.push(1, 0);
  EXPECT_THROW(q.set_impl(QueueImpl::kCalendar), std::logic_error);
  q.pop();
  EXPECT_NO_THROW(q.set_impl(QueueImpl::kCalendar));
  EXPECT_EQ(q.impl(), QueueImpl::kCalendar);
}

// --------------------------------------------------------------------------
// Engine-level invariance: scheduling policy and queue implementation are
// pure performance knobs — the merged trace must not move a byte.

SimulationConfig small_config(bool auto_guard = false) {
  SimulationConfig cfg;
  cfg.users = 200;
  cfg.days = 2;
  cfg.seed = 20140111;
  cfg.enable_ddos = true;
  cfg.auto_countermeasures = auto_guard;
  return cfg;
}

std::vector<std::string> run_trace_with(
    const SimulationConfig& cfg, std::size_t threads,
    ParallelSimulation::Scheduling sched, QueueImpl queue,
    std::size_t flush_depth = 0) {
  InMemorySink sink;
  ParallelSimulation sim(cfg, sink, threads);
  sim.set_scheduling(sched);
  sim.set_queue_impl(queue);
  if (flush_depth != 0) sim.set_flush_depth(flush_depth);
  sim.run();
  std::vector<std::string> lines;
  lines.reserve(sink.records().size());
  for (const TraceRecord& rec : sink.records()) {
    std::string line;
    for (const std::string& field : rec.to_csv()) {
      line += field;
      line += ',';
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

void expect_traces_equal(const std::vector<std::string>& a,
                         const std::vector<std::string>& b,
                         const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << what << ": first divergence at row " << i;
}

TEST(EpochPipeline, StickySchedulingMatchesCounterAndInline) {
  const auto cfg = small_config(/*auto_guard=*/true);
  using S = ParallelSimulation::Scheduling;
  const auto inline1 =
      run_trace_with(cfg, 1, S::kSticky, QueueImpl::kCalendar);
  const auto sticky4 =
      run_trace_with(cfg, 4, S::kSticky, QueueImpl::kCalendar);
  const auto counter4 =
      run_trace_with(cfg, 4, S::kCounter, QueueImpl::kCalendar);
  ASSERT_FALSE(inline1.empty());
  expect_traces_equal(inline1, sticky4, "sticky@4 vs inline");
  expect_traces_equal(inline1, counter4, "counter@4 vs inline");
}

TEST(EpochPipeline, FlushDepthDoesNotChangeTrace) {
  // The ring depth K only decides how far sink writes may lag the
  // barrier; the guard purge schedule is pinned to stage A (joined
  // every barrier) so every (threads, K) combination must emit the
  // byte-identical trace. auto_guard on: purge timing is exactly the
  // thing a buggy ring would move.
  const auto cfg = small_config(/*auto_guard=*/true);
  using S = ParallelSimulation::Scheduling;
  const auto baseline =
      run_trace_with(cfg, 1, S::kSticky, QueueImpl::kCalendar, 1);
  ASSERT_FALSE(baseline.empty());
  for (const std::size_t depth : {std::size_t{2}, std::size_t{4}}) {
    const auto inline_k =
        run_trace_with(cfg, 1, S::kSticky, QueueImpl::kCalendar, depth);
    expect_traces_equal(baseline, inline_k, "inline depth vs depth 1");
  }
  for (const std::size_t depth :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const auto pooled =
        run_trace_with(cfg, 4, S::kSticky, QueueImpl::kCalendar, depth);
    expect_traces_equal(baseline, pooled, "4-thread ring vs inline K=1");
  }
}

TEST(EpochPipeline, FlushDepthClampsToValidRange) {
  SimulationConfig cfg = small_config();
  InMemorySink sink;
  ParallelSimulation sim(cfg, sink, 1);
  sim.set_flush_depth(0);
  EXPECT_EQ(sim.flush_depth(), 1u);
  sim.set_flush_depth(64);
  EXPECT_EQ(sim.flush_depth(), 8u);
  sim.set_flush_depth(3);
  EXPECT_EQ(sim.flush_depth(), 3u);
}

TEST(EpochPipeline, QueueImplDoesNotChangeTrace) {
  const auto cfg = small_config();
  using S = ParallelSimulation::Scheduling;
  const auto heap2 =
      run_trace_with(cfg, 2, S::kSticky, QueueImpl::kBinaryHeap);
  const auto cal2 =
      run_trace_with(cfg, 2, S::kSticky, QueueImpl::kCalendar);
  ASSERT_FALSE(heap2.empty());
  expect_traces_equal(heap2, cal2, "calendar vs heap");
}

TEST(EpochPipeline, PhaseBreakdownCoversEveryEpoch) {
  const auto cfg = small_config();
  InMemorySink sink;
  ParallelSimulation sim(cfg, sink, 2);
  sim.run();
  const auto& p = sim.phases();
  // One epoch per simulated hour over the whole horizon.
  EXPECT_EQ(p.epochs, static_cast<std::uint64_t>(cfg.days) * 24u);
  EXPECT_GT(p.compute_s, 0.0);
  EXPECT_GT(p.flush_s, 0.0);
  EXPECT_GT(p.write_s, 0.0);
  EXPECT_GE(p.merge_s, 0.0);
  EXPECT_GE(p.flush_stall_s, 0.0);
  EXPECT_GE(p.ring_stall_s, 0.0);
  EXPECT_GE(p.plan_rebuilds, 1u);  // the first epoch always builds a plan
  // The default engine queue is the calendar; its bucket stats must have
  // accumulated over the run.
  EXPECT_GT(p.cal_finds, 0u);
  EXPECT_GT(p.cal_scanned, 0u);
}

// --------------------------------------------------------------------------
// Bounded MPSC mailbox.

TEST(EpochMailbox, DrainsLanesInIndexOrderAndPostOrder) {
  EpochMailbox<int> mail(3, /*lane_capacity=*/4);
  mail.post(2, 20);
  mail.post(0, 1);
  mail.post(1, 10);
  mail.post(0, 2);
  EXPECT_EQ(mail.pending(), 4u);
  std::vector<std::pair<std::size_t, int>> got;
  mail.drain([&](std::size_t lane, int v) { got.emplace_back(lane, v); });
  const std::vector<std::pair<std::size_t, int>> want = {
      {0, 1}, {0, 2}, {1, 10}, {2, 20}};
  EXPECT_EQ(got, want);
  EXPECT_EQ(mail.pending(), 0u);
}

TEST(EpochMailbox, OverflowSpillsWithoutLoss) {
  EpochMailbox<int> mail(1, /*lane_capacity=*/2);
  for (int i = 0; i < 7; ++i) mail.post(0, i);
  std::vector<int> got;
  mail.drain([&](std::size_t, int v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
  // The lane is reusable after a drain that touched the spill path.
  mail.post(0, 42);
  got.clear();
  mail.drain([&](std::size_t, int v) { got.push_back(v); });
  EXPECT_EQ(got, (std::vector<int>{42}));
}

TEST(EpochMailbox, ConcurrentPostsAllArrive) {
  // Producers race onto every lane; the drain must see every value
  // exactly once (order across producers is unspecified, totals are not).
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  EpochMailbox<int> mail(kProducers, /*lane_capacity=*/64);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&mail, p] {
      for (int i = 0; i < kPerProducer; ++i)
        mail.post(static_cast<std::size_t>((p + i) % kProducers),
                  p * kPerProducer + i);
    });
  }
  for (auto& t : producers) t.join();
  std::vector<int> got;
  mail.drain([&](std::size_t, int v) { got.push_back(v); });
  ASSERT_EQ(got.size(),
            static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(got.begin(), got.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i)
    ASSERT_EQ(got[static_cast<std::size_t>(i)], i) << "lost or duplicated";
}

}  // namespace
}  // namespace u1
