// One shard of the U1 metadata store. The real cluster was 20 PostgreSQL
// servers in 10 master/slave shards; metadata of a user's files and folders
// always lives in one shard (§3.4), which makes single-shard operations
// lockless. A Shard owns the relational state for its users: volumes,
// nodes (with a children index for directory cascades), upload jobs and
// incoming share grants.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "proto/entities.hpp"
#include "proto/ids.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace u1 {

/// Server-side multipart upload state (appendix A, Fig. 17).
struct UploadJob {
  UploadJobId id;
  UserId user;
  NodeId node;
  ContentId content;
  std::uint64_t declared_size = 0;
  std::string multipart_id;  // assigned by the data store (S3)
  std::uint32_t parts = 0;
  std::uint64_t bytes_received = 0;
  SimTime created_at = 0;
  SimTime last_touched = 0;
};

/// A share grant visible to the recipient: (owner, volume) shared to user.
struct ShareGrant {
  VolumeId volume;
  UserId shared_by;
  UserId shared_to;
  SimTime granted_at = 0;
};

class Shard {
 public:
  explicit Shard(ShardId id) : id_(id) {}

  ShardId id() const noexcept { return id_; }

  // --- users ------------------------------------------------------------
  /// Registers a user and creates their root volume. Throws
  /// std::logic_error if the user already exists on this shard.
  Volume& create_user(UserId user, SimTime now, Rng& rng);
  bool has_user(UserId user) const noexcept;
  std::optional<User> get_user(UserId user) const;

  // --- volumes ----------------------------------------------------------
  Volume& create_udf(UserId user, SimTime now, Rng& rng);
  std::vector<Volume> list_volumes(UserId user) const;
  const Volume* find_volume(VolumeId id) const;
  Volume* find_volume(VolumeId id);
  /// Root volume of a user; throws std::out_of_range for unknown users.
  Volume& root_volume(UserId user);

  /// Deletes a volume and every node it contains (cascade). Returns the
  /// content ids of all deleted file nodes so the caller can release
  /// dedup references. Throws std::out_of_range for unknown volumes and
  /// std::invalid_argument when deleting the root volume (the protocol
  /// forbids it).
  std::vector<ContentId> delete_volume(VolumeId id);

  // --- nodes ------------------------------------------------------------
  Node& make_node(UserId user, VolumeId volume, NodeId parent, NodeKind kind,
                  std::string name_hash, std::string extension, SimTime now,
                  Rng& rng);
  const Node* find_node(NodeId id) const;
  Node* find_node(NodeId id);
  /// Children of a directory (ids), empty for unknown/leaf nodes.
  std::vector<NodeId> children_of(NodeId dir) const;

  /// Removes a node; directories cascade into their subtree. Returns the
  /// content ids of all removed file nodes (possibly empty for fresh
  /// files). Throws std::out_of_range for unknown nodes.
  std::vector<ContentId> unlink_node(NodeId id);

  /// Reparents a node within the same volume. Throws std::out_of_range
  /// for unknown ids, std::invalid_argument for cross-volume moves, moving
  /// a node into itself/its own subtree, or onto a non-directory parent.
  void move_node(NodeId id, NodeId new_parent);

  /// Attaches content to a file node (dal.make_content) and bumps the
  /// volume generation. Returns the previous content id (all-zero if the
  /// node had none) so the caller can release the old reference.
  ContentId set_node_content(NodeId id, const ContentId& content,
                             std::uint64_t size_bytes);

  /// Nodes of a volume changed after `since_generation` (dal.get_delta).
  std::vector<Node> get_delta(VolumeId volume,
                              std::uint64_t since_generation) const;
  /// All nodes of a volume (dal.get_from_scratch).
  std::vector<Node> get_from_scratch(VolumeId volume) const;

  // --- upload jobs --------------------------------------------------------
  UploadJob& make_uploadjob(UserId user, NodeId node, const ContentId& content,
                            std::uint64_t declared_size, SimTime now,
                            Rng& rng);
  UploadJob* find_uploadjob(UploadJobId id);
  void delete_uploadjob(UploadJobId id);
  /// Jobs not touched since `cutoff` — the weekly GC of appendix A.
  std::vector<UploadJobId> stale_uploadjobs(SimTime cutoff) const;
  std::size_t uploadjob_count() const noexcept { return uploadjobs_.size(); }

  // --- shares -----------------------------------------------------------
  /// Records an incoming grant on the *recipient's* shard.
  void add_share_grant(const ShareGrant& grant);
  std::vector<ShareGrant> share_grants(UserId user) const;
  void remove_grants_for_volume(VolumeId volume);

  /// Drops every node row of `user`'s volumes (including root dirs)
  /// WITHOUT releasing dedup references — the blobs stay live in the
  /// registry exactly as if the rows were still here. Worker processes
  /// of the distributed engine call this right after a remote user's
  /// bootstrap replay: the rows would otherwise sit as dead weight until
  /// release_remote_groups(), pinning the per-process setup RSS peak.
  /// The user/volume rows stay (tiny, and share grants resolve against
  /// them); never call this for a user that will run in this process.
  void shed_user_namespace(UserId user);

  // --- stats ------------------------------------------------------------
  /// Read-only iteration hooks for state-snapshot analyses (Fig. 10/11).
  const std::unordered_map<VolumeId, Volume>& volumes_map() const noexcept {
    return volumes_;
  }
  const std::unordered_map<UserId, User>& users_map() const noexcept {
    return users_;
  }
  /// (file count, directory count) of a volume, excluding its root dir.
  std::pair<std::size_t, std::size_t> count_nodes(VolumeId volume) const;

  std::size_t user_count() const noexcept { return users_.size(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t volume_count() const noexcept { return volumes_.size(); }

 private:
  void bump_generation(Node& node);
  void collect_subtree(NodeId id, std::vector<NodeId>& out) const;
  /// Canonical copy of an extension string. Extensions come from the file
  /// model's small closed set, so the interner stays tiny while every node
  /// shares one heap buffer per distinct (non-SSO) extension.
  const std::string& intern_extension(std::string s);

  ShardId id_;
  std::unordered_set<std::string> extensions_;
  std::unordered_map<UserId, User> users_;
  std::unordered_map<UserId, std::vector<VolumeId>> volumes_by_user_;
  std::unordered_map<VolumeId, Volume> volumes_;
  std::unordered_map<NodeId, Node> nodes_;
  std::unordered_map<NodeId, std::vector<NodeId>> children_;
  /// Secondary index: nodes per volume (keeps get_delta/get_from_scratch
  /// proportional to the volume, not the shard).
  std::unordered_map<VolumeId, std::vector<NodeId>> nodes_by_volume_;
  std::unordered_map<UploadJobId, UploadJob> uploadjobs_;
  std::unordered_map<UserId, std::vector<ShareGrant>> grants_;
};

}  // namespace u1
