file(REMOVE_RECURSE
  "CMakeFiles/month_in_the_life.dir/month_in_the_life.cpp.o"
  "CMakeFiles/month_in_the_life.dir/month_in_the_life.cpp.o.d"
  "month_in_the_life"
  "month_in_the_life.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/month_in_the_life.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
