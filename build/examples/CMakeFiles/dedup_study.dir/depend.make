# Empty dependencies file for dedup_study.
# This may be replaced when dependencies are built.
