file(REMOVE_RECURSE
  "libu1_cloudstore.a"
)
