#include "util/uuid.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace u1 {
namespace {

TEST(Uuid, NilIsNil) {
  EXPECT_TRUE(Uuid::nil().is_nil());
  EXPECT_EQ(Uuid::nil().str(), "00000000-0000-0000-0000-000000000000");
}

TEST(Uuid, V4HasVersionAndVariantBits) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Uuid u = Uuid::v4(rng);
    EXPECT_EQ(u.bytes[6] >> 4, 0x4);
    EXPECT_EQ(u.bytes[8] >> 6, 0x2);
    EXPECT_FALSE(u.is_nil());
  }
}

TEST(Uuid, StrRoundTripsThroughParse) {
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const Uuid u = Uuid::v4(rng);
    EXPECT_EQ(Uuid::parse(u.str()), u);
  }
}

TEST(Uuid, StrHasCanonicalShape) {
  Rng rng(3);
  const std::string s = Uuid::v4(rng).str();
  ASSERT_EQ(s.size(), 36u);
  EXPECT_EQ(s[8], '-');
  EXPECT_EQ(s[13], '-');
  EXPECT_EQ(s[18], '-');
  EXPECT_EQ(s[23], '-');
}

TEST(Uuid, ParseRejectsMalformed) {
  EXPECT_THROW(Uuid::parse(""), std::invalid_argument);
  EXPECT_THROW(Uuid::parse("not-a-uuid"), std::invalid_argument);
  EXPECT_THROW(Uuid::parse("00000000:0000:0000:0000:000000000000"),
               std::invalid_argument);
  EXPECT_THROW(Uuid::parse("0000000000000000000000000000000000000"),
               std::invalid_argument);
  EXPECT_THROW(Uuid::parse("zzzzzzzz-0000-0000-0000-000000000000"),
               std::invalid_argument);
}

TEST(Uuid, CollisionFreeOverManyDraws) {
  Rng rng(4);
  std::unordered_set<Uuid> seen;
  for (int i = 0; i < 100000; ++i) {
    EXPECT_TRUE(seen.insert(Uuid::v4(rng)).second);
  }
}

TEST(Uuid, DeterministicGivenSeed) {
  Rng a(77), b(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(Uuid::v4(a), Uuid::v4(b));
}

}  // namespace
}  // namespace u1
