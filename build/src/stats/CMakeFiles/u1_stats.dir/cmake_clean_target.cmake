file(REMOVE_RECURSE
  "libu1_stats.a"
)
