# Empty dependencies file for u1_stats.
# This may be replaced when dependencies are built.
