
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/acf_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/acf_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/acf_test.cpp.o.d"
  "/root/repo/tests/stats/correlation_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/correlation_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/correlation_test.cpp.o.d"
  "/root/repo/tests/stats/ecdf_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/ecdf_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/ecdf_test.cpp.o.d"
  "/root/repo/tests/stats/gini_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/gini_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/gini_test.cpp.o.d"
  "/root/repo/tests/stats/histogram_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/histogram_test.cpp.o.d"
  "/root/repo/tests/stats/powerlaw_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/powerlaw_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/powerlaw_test.cpp.o.d"
  "/root/repo/tests/stats/summary_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/summary_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/summary_test.cpp.o.d"
  "/root/repo/tests/stats/timeseries_test.cpp" "tests/CMakeFiles/stats_tests.dir/stats/timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/stats_tests.dir/stats/timeseries_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/u1_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/u1_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
