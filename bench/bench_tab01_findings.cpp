// Table 1: the paper's summary of findings, reproduced side by side.
#include "analysis/findings.hpp"
#include "bench/bench_util.hpp"
#include "trace/sink.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  const SimTime horizon = cfg.days * kDay;

  TrafficAnalyzer traffic(0, horizon);
  FileTypeAnalyzer types;
  DedupAnalyzer dedup;
  DdosAnalyzer ddos(0, horizon);
  UserActivityAnalyzer users(0, horizon);
  BurstinessAnalyzer bursts;
  RpcPerfAnalyzer rpcs;
  LoadBalanceAnalyzer load(0, horizon, cfg.backend.fleet.machines,
                           cfg.backend.shards);
  SessionAnalyzer sessions(0, horizon);

  MultiSink fanout;
  for (TraceSink* sink :
       std::initializer_list<TraceSink*>{&traffic, &types, &dedup, &ddos,
                                         &users, &bursts, &rpcs, &load,
                                         &sessions}) {
    fanout.add(sink);
  }
  auto sim = run_into(fanout, cfg);
  users.finalize();

  header("Table 1", "Summary of findings (paper vs this reproduction)");
  const auto findings = extract_findings(types, traffic, dedup, ddos, users,
                                         bursts, rpcs, load, sessions);
  int holds = 0;
  for (const auto& f : findings) {
    std::printf("  [%s] %-24s paper=%9.4g  measured=%9.4g\n",
                f.shape_holds ? "OK " : "MISS", f.id.c_str(), f.paper_value,
                f.measured);
    std::printf("        %s\n", f.statement.c_str());
    if (f.shape_holds) ++holds;
  }
  std::printf("\n  %d of %zu qualitative findings reproduce at this "
              "scale.\n", holds, findings.size());
  return 0;
}
