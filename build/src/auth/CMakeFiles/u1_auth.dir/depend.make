# Empty dependencies file for u1_auth.
# This may be replaced when dependencies are built.
