file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_ddos.dir/bench_fig05_ddos.cpp.o"
  "CMakeFiles/bench_fig05_ddos.dir/bench_fig05_ddos.cpp.o.d"
  "bench_fig05_ddos"
  "bench_fig05_ddos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_ddos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
