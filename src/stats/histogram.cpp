#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace u1 {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi) {
  if (!(lo < hi) || bins == 0)
    throw std::invalid_argument("Histogram: need lo < hi and bins > 0");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0.0);
}

void Histogram::add(double x, double weight) noexcept {
  std::size_t idx;
  if (x < lo_) {
    ++underflow_;
    idx = 0;
  } else if (x >= hi_) {
    ++overflow_;
    idx = counts_.size() - 1;
  } else {
    idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
  }
  counts_[idx] += weight;
  total_ += weight;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size())
    throw std::invalid_argument("Histogram::merge: binning mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::bin_hi");
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::count(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("Histogram::count");
  return counts_[i];
}

EdgeHistogram::EdgeHistogram(std::vector<double> edges)
    : edges_(std::move(edges)) {
  if (edges_.empty()) throw std::invalid_argument("EdgeHistogram: no edges");
  if (!std::is_sorted(edges_.begin(), edges_.end()))
    throw std::invalid_argument("EdgeHistogram: edges must be sorted");
  counts_.assign(edges_.size() + 1, 0.0);
}

std::size_t EdgeHistogram::bin_of(double x) const noexcept {
  // bin i covers (edges[i-1], edges[i]]
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), x);
  return static_cast<std::size_t>(it - edges_.begin());
}

void EdgeHistogram::add(double x, double weight) noexcept {
  counts_[bin_of(x)] += weight;
  total_ += weight;
}

void EdgeHistogram::merge(const EdgeHistogram& other) {
  if (edges_ != other.edges_)
    throw std::invalid_argument("EdgeHistogram::merge: edge mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double EdgeHistogram::count(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("EdgeHistogram::count");
  return counts_[i];
}

double EdgeHistogram::fraction(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("EdgeHistogram::fraction");
  return total_ > 0 ? counts_[i] / total_ : 0.0;
}

std::string EdgeHistogram::label(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("EdgeHistogram::label");
  char buf[64];
  auto fmt = [](double v, char* out, std::size_t n) {
    if (v == static_cast<std::int64_t>(v)) {
      std::snprintf(out, n, "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(out, n, "%g", v);
    }
  };
  char a[24], b[24];
  if (i == 0) {
    fmt(edges_.front(), a, sizeof(a));
    std::snprintf(buf, sizeof(buf), "x<%s", a);
  } else if (i == counts_.size() - 1) {
    fmt(edges_.back(), a, sizeof(a));
    std::snprintf(buf, sizeof(buf), "%s<x", a);
  } else {
    fmt(edges_[i - 1], a, sizeof(a));
    fmt(edges_[i], b, sizeof(b));
    std::snprintf(buf, sizeof(buf), "%s<x<%s", a, b);
  }
  return buf;
}

}  // namespace u1
