# Empty compiler generated dependencies file for u1_workload.
# This may be replaced when dependencies are built.
