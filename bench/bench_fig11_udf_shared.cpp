// Fig. 11: distribution of user-defined and shared volumes across users.
#include "analysis/volumes.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"
#include "trace/sink.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  NullSink sink;
  auto sim = run_into(sink, cfg);

  header("Fig 11", "Shared / user-defined volumes across users");
  const auto stats = analyze_volume_ownership(sim->stores(), cfg.users);
  row("users with at least one UDF volume", 0.58, stats.users_with_udf);
  row("users with at least one shared volume", 0.018,
      stats.users_with_share);

  Ecdf udfs{std::vector<double>(stats.udfs_per_user)};
  Ecdf shares{std::vector<double>(stats.shares_per_user)};
  std::printf("\n  volumes-per-user CDF:\n");
  std::printf("  %-8s %10s %10s\n", "x", "UDF", "shared");
  for (const double x : {0.0, 1.0, 2.0, 5.0, 10.0, 50.0}) {
    std::printf("  %-8.0f %10.4f %10.4f\n", x, udfs.at(x), shares.at(x));
  }
  note("paper: U1 was used more as a storage service than for "
       "collaborative work; sharing was rare");
  return 0;
}
