#include "analysis/users.hpp"

#include <algorithm>
#include <stdexcept>

namespace u1 {

UserActivityAnalyzer::UserActivityAnalyzer(SimTime start, SimTime end)
    : start_(start),
      end_(end),
      online_(start, end, kHour),
      active_(start, end, kHour) {}

void UserActivityAnalyzer::append(const TraceRecord& r) {
  if (r.type == RecordType::kSession) {
    if (r.session_event == SessionEvent::kOpen) {
      open_sessions_[r.session] = OpenSession{r.user, r.t};
      traffic_.try_emplace(r.user);  // user exists even if never transfers
    } else if (r.session_event == SessionEvent::kClose) {
      const auto it = open_sessions_.find(r.session);
      if (it != open_sessions_.end()) {
        if (r.t >= start_ && it->second.opened < end_) {
          online_.add_interval(std::max(it->second.opened, start_),
                               std::min(r.t, end_ - 1), r.user.value);
        }
        open_sessions_.erase(it);
      }
    }
    return;
  }
  if (r.type != RecordType::kStorageDone || r.failed || r.t < 0) return;
  if (is_storage_op(r.api_op)) active_.add(r.t, r.user.value);
  if (r.api_op == ApiOp::kPutContent) {
    traffic_[r.user].up += r.transferred_bytes;
  } else if (r.api_op == ApiOp::kGetContent) {
    traffic_[r.user].down += r.transferred_bytes;
  }
}

class UserActivityAnalyzer::Shard final : public AnalyzerShard {
 public:
  Shard(SimTime start, SimTime end) : analyzer(start, end) {}

  void consume(const TraceRecord* records, std::size_t count) override {
    analyzer.append_batch(records, count);
  }

  UserActivityAnalyzer analyzer;
};

std::unique_ptr<AnalyzerShard> UserActivityAnalyzer::make_shard() {
  return std::make_unique<Shard>(start_, end_);
}

void UserActivityAnalyzer::merge_shard(AnalyzerShard& shard) {
  UserActivityAnalyzer& o = dynamic_cast<Shard&>(shard).analyzer;
  online_.merge(o.online_);
  active_.merge(o.active_);
  // Disjoint key spaces: merge() moves every node, copying nothing.
  traffic_.merge(o.traffic_);
  open_sessions_.merge(o.open_sessions_);
}

void UserActivityAnalyzer::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (const auto& [sid, open] : open_sessions_) {
    if (open.opened < end_) {
      online_.add_interval(std::max(open.opened, start_), end_ - 1,
                           open.user.value);
    }
  }
  open_sessions_.clear();
}

std::vector<double> UserActivityAnalyzer::online_users_hourly() const {
  if (!finalized_)
    throw std::logic_error("UserActivityAnalyzer: call finalize() first");
  return online_.counts();
}

std::vector<double> UserActivityAnalyzer::active_users_hourly() const {
  return active_.counts();
}

std::pair<double, double> UserActivityAnalyzer::active_share_range() const {
  const auto online = online_users_hourly();
  const auto active = active_users_hourly();
  double lo = 1.0, hi = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < online.size(); ++i) {
    if (online[i] < 20) continue;  // skip nearly-empty hours
    // Skip hours where transfer completions outlive their sessions
    // (attack churn): the share is undefined there.
    if (active[i] > online[i]) continue;
    const double share = active[i] / online[i];
    lo = std::min(lo, share);
    hi = std::max(hi, share);
    any = true;
  }
  if (!any) return {0.0, 0.0};
  return {lo, hi};
}

std::vector<double> UserActivityAnalyzer::upload_bytes_per_user() const {
  std::vector<double> out;
  out.reserve(traffic_.size());
  for (const auto& [user, t] : traffic_)
    out.push_back(static_cast<double>(t.up));
  return out;
}

std::vector<double> UserActivityAnalyzer::download_bytes_per_user() const {
  std::vector<double> out;
  out.reserve(traffic_.size());
  for (const auto& [user, t] : traffic_)
    out.push_back(static_cast<double>(t.down));
  return out;
}

double UserActivityAnalyzer::downloaders_fraction() const {
  if (traffic_.empty()) return 0.0;
  std::uint64_t n = 0;
  for (const auto& [user, t] : traffic_)
    if (t.down > 0) ++n;
  return static_cast<double>(n) / static_cast<double>(traffic_.size());
}

double UserActivityAnalyzer::uploaders_fraction() const {
  if (traffic_.empty()) return 0.0;
  std::uint64_t n = 0;
  for (const auto& [user, t] : traffic_)
    if (t.up > 0) ++n;
  return static_cast<double>(n) / static_cast<double>(traffic_.size());
}

LorenzCurve UserActivityAnalyzer::upload_lorenz() const {
  return lorenz(upload_bytes_per_user());
}

LorenzCurve UserActivityAnalyzer::download_lorenz() const {
  return lorenz(download_bytes_per_user());
}

double UserActivityAnalyzer::top_traffic_share(double fraction) const {
  std::vector<double> totals;
  totals.reserve(traffic_.size());
  for (const auto& [user, t] : traffic_)
    totals.push_back(static_cast<double>(t.up + t.down));
  return lorenz(totals).top_share(fraction);
}

UserActivityAnalyzer::ClassShares UserActivityAnalyzer::classify_users()
    const {
  ClassShares shares;
  if (traffic_.empty()) return shares;
  const double n = static_cast<double>(traffic_.size());
  for (const auto& [user, t] : traffic_) {
    const double up = static_cast<double>(t.up);
    const double down = static_cast<double>(t.down);
    if (up + down < 10.0 * 1024) {
      shares.occasional += 1;
    } else if (down <= 0 || (up > 0 && up / std::max(down, 1.0) >= 1000.0)) {
      shares.upload_only += 1;
    } else if (up <= 0 || down / std::max(up, 1.0) >= 1000.0) {
      shares.download_only += 1;
    } else {
      shares.heavy += 1;
    }
  }
  shares.occasional /= n;
  shares.upload_only /= n;
  shares.download_only /= n;
  shares.heavy /= n;
  return shares;
}

}  // namespace u1
