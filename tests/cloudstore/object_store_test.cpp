#include "cloudstore/object_store.hpp"

#include <gtest/gtest.h>

namespace u1 {
namespace {

TEST(ObjectStore, PutGetRemove) {
  ObjectStore s3;
  s3.put("k1", 100, kHour);
  const auto obj = s3.get("k1");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->size_bytes, 100u);
  EXPECT_EQ(obj->stored_at, kHour);
  EXPECT_TRUE(s3.exists("k1"));
  EXPECT_TRUE(s3.remove("k1"));
  EXPECT_FALSE(s3.exists("k1"));
  EXPECT_FALSE(s3.remove("k1"));
  EXPECT_FALSE(s3.get("k1").has_value());
}

TEST(ObjectStore, OverwriteAdjustsBytes) {
  ObjectStore s3;
  s3.put("k", 100, 0);
  s3.put("k", 40, 1);
  EXPECT_EQ(s3.object_count(), 1u);
  EXPECT_EQ(s3.stored_bytes(), 40u);
}

TEST(ObjectStore, ByteAccounting) {
  ObjectStore s3;
  s3.put("a", 10, 0);
  s3.put("b", 20, 0);
  EXPECT_EQ(s3.stored_bytes(), 30u);
  s3.remove("a");
  EXPECT_EQ(s3.stored_bytes(), 20u);
}

TEST(ObjectStore, MultipartHappyPath) {
  ObjectStore s3;
  const std::string id = s3.initiate_multipart("big", 0);
  EXPECT_EQ(s3.open_multiparts(), 1u);
  s3.upload_part(id, kMultipartChunkBytes);
  s3.upload_part(id, kMultipartChunkBytes);
  s3.upload_part(id, 1024);  // final short part
  const auto state = s3.multipart_state(id);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(state->parts, 3u);
  const auto obj = s3.complete_multipart(id, kHour);
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->size_bytes, 2 * kMultipartChunkBytes + 1024);
  EXPECT_TRUE(s3.exists("big"));
  EXPECT_EQ(s3.open_multiparts(), 0u);
  EXPECT_FALSE(s3.multipart_state(id).has_value());
}

TEST(ObjectStore, MultipartAbortDiscards) {
  ObjectStore s3;
  const std::string id = s3.initiate_multipart("gone", 0);
  s3.upload_part(id, 100);
  EXPECT_TRUE(s3.abort_multipart(id));
  EXPECT_FALSE(s3.exists("gone"));
  EXPECT_FALSE(s3.abort_multipart(id));
  EXPECT_EQ(s3.stored_bytes(), 0u);
}

TEST(ObjectStore, MultipartErrors) {
  // Bad multipart requests are status returns, not exceptions: injected
  // faults can race an upload with its own teardown, and the back-end's
  // hot path treats these as retryable service errors.
  ObjectStore s3;
  EXPECT_FALSE(s3.upload_part("nope", 10));
  EXPECT_FALSE(s3.complete_multipart("nope", 0).has_value());
  const std::string id = s3.initiate_multipart("k", 0);
  EXPECT_FALSE(s3.upload_part(id, 0));  // zero-sized part
  EXPECT_FALSE(s3.complete_multipart(id, 0).has_value());  // no parts
  // The failed complete leaves the upload open; parts can still land.
  EXPECT_TRUE(s3.upload_part(id, 100));
  EXPECT_TRUE(s3.complete_multipart(id, 0).has_value());
}

TEST(ObjectStore, DistinctUploadIds) {
  ObjectStore s3;
  const std::string a = s3.initiate_multipart("k1", 0);
  const std::string b = s3.initiate_multipart("k2", 0);
  EXPECT_NE(a, b);
}

TEST(ObjectStore, OperationCounters) {
  ObjectStore s3;
  s3.put("a", 1, 0);
  (void)s3.get("a");
  (void)s3.get("missing");
  s3.remove("a");
  EXPECT_EQ(s3.put_count(), 1u);
  EXPECT_EQ(s3.get_count(), 2u);
  EXPECT_EQ(s3.delete_count(), 1u);
}

TEST(ObjectStore, MonthlyBill) {
  ObjectStore s3;
  // 1 TB at $0.03/GB-month = $30.72.
  s3.put("tb", 1024ull * 1024 * 1024 * 1024, 0);
  EXPECT_NEAR(s3.monthly_bill_usd(), 30.72, 0.01);
}

}  // namespace
}  // namespace u1
