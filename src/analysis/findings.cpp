#include "analysis/findings.hpp"

namespace u1 {

std::vector<Finding> extract_findings(const FileTypeAnalyzer& types,
                                      const TrafficAnalyzer& traffic,
                                      const DedupAnalyzer& dedup,
                                      const DdosAnalyzer& ddos,
                                      const UserActivityAnalyzer& users,
                                      const BurstinessAnalyzer& bursts,
                                      const RpcPerfAnalyzer& rpcs,
                                      const LoadBalanceAnalyzer& load,
                                      const SessionAnalyzer& sessions) {
  std::vector<Finding> out;

  {
    Finding f;
    f.id = "small-files";
    f.statement = "90% of files are smaller than 1MByte";
    f.paper_value = 0.90;
    f.measured = types.fraction_below(1024.0 * 1024.0);
    f.shape_holds = f.measured >= 0.80;
    out.push_back(f);
  }
  {
    Finding f;
    f.id = "update-traffic";
    f.statement = "18.5% of upload traffic is caused by file updates";
    f.paper_value = 0.185;
    f.measured = traffic.update_traffic_fraction();
    f.shape_holds = f.measured >= 0.08 && f.measured <= 0.35;
    out.push_back(f);
  }
  {
    Finding f;
    f.id = "dedup-ratio";
    f.statement = "deduplication ratio of 17% in one month";
    f.paper_value = 0.171;
    f.measured = dedup.dedup_ratio();
    f.shape_holds = f.measured >= 0.10 && f.measured <= 0.25;
    out.push_back(f);
  }
  {
    Finding f;
    f.id = "ddos-frequent";
    f.statement = "3 DDoS attacks detected in one month";
    f.paper_value = 3;
    f.measured = static_cast<double>(ddos.attack_days());
    f.shape_holds = f.measured >= 2;
    out.push_back(f);
  }
  {
    Finding f;
    f.id = "traffic-skew";
    f.statement = "1% of users generate 65% of the traffic";
    f.paper_value = 0.656;
    f.measured = users.top_traffic_share(0.01);
    f.shape_holds = f.measured >= 0.40;
    out.push_back(f);
  }
  {
    Finding f;
    f.id = "long-sequences";
    f.statement = "data management operations run in long sequences "
                  "(bursty, CV^2 >> 1)";
    f.paper_value = 1.0;  // Poisson reference CV^2
    f.measured = bursts.upload_cv2();
    f.shape_holds = f.measured > 3.0;
    out.push_back(f);
  }
  {
    Finding f;
    f.id = "power-law-bursts";
    f.statement = "user inter-op times approximated by a power law with "
                  "1 < alpha < 2 (Upload: 1.54)";
    f.paper_value = 1.54;
    f.measured = bursts.upload_fit().alpha;
    f.shape_holds = f.measured > 1.0 && f.measured < 2.0;
    out.push_back(f);
  }
  {
    Finding f;
    f.id = "rpc-long-tails";
    f.statement = "RPC service time distributions exhibit long tails "
                  "(7-22% far from median)";
    f.paper_value = 0.145;  // midpoint of the 7-22% range
    f.measured = rpcs.tail_fraction(RpcOp::kMakeFile);
    f.shape_holds = f.measured >= 0.05 && f.measured <= 0.25;
    out.push_back(f);
  }
  {
    Finding f;
    f.id = "short-window-imbalance";
    f.statement = "short-window load far from the mean; long-term shard "
                  "imbalance only ~4.9%";
    f.paper_value = 0.049;
    f.measured = load.shard_long_term_cv();
    // Shape: short-window balance is much worse than long-term balance.
    // (The absolute long-term number shrinks with population; the paper's
    // 4.9% was measured over 1.29M users.)
    f.shape_holds = load.shard_short_term_cv() > 1.5 * f.measured;
    out.push_back(f);
  }
  {
    Finding f;
    f.id = "cold-sessions";
    f.statement = "only 5.57% of sessions perform storage operations";
    f.paper_value = 0.0557;
    f.measured = sessions.active_session_fraction();
    f.shape_holds = f.measured < 0.25;
    out.push_back(f);
  }
  return out;
}

}  // namespace u1
