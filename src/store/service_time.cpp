#include "store/service_time.hpp"

#include <cmath>
#include <stdexcept>

namespace u1 {
namespace {

/// Medians in seconds, calibrated against the Fig. 13 scatter: reads
/// cluster around 1-3ms, writes around 3-8ms and cascades beyond 50ms.
ServiceTimeParams default_params(RpcOp op) {
  ServiceTimeParams p;
  switch (op) {
    // --- reads (fast: lockless, parallel over the shard replica pair) ---
    case RpcOp::kListVolumes:        p.median_s = 0.0013; break;
    case RpcOp::kListShares:         p.median_s = 0.0019; break;
    case RpcOp::kGetDelta:           p.median_s = 0.0042; break;
    case RpcOp::kGetVolumeId:        p.median_s = 0.0010; break;
    case RpcOp::kGetUploadJob:       p.median_s = 0.0016; break;
    case RpcOp::kGetReusableContent: p.median_s = 0.0021; break;
    case RpcOp::kGetUserIdFromToken: p.median_s = 0.0012; break;
    case RpcOp::kGetNode:            p.median_s = 0.0011; break;
    case RpcOp::kGetRoot:            p.median_s = 0.0010; break;
    case RpcOp::kGetUserData:        p.median_s = 0.0017; break;
    // --- writes / updates / deletes ---
    case RpcOp::kMakeDir:            p.median_s = 0.0049; break;
    case RpcOp::kMakeFile:           p.median_s = 0.0058; break;
    case RpcOp::kUnlinkNode:         p.median_s = 0.0052; break;
    case RpcOp::kMove:               p.median_s = 0.0061; break;
    case RpcOp::kCreateUDF:          p.median_s = 0.0072; break;
    case RpcOp::kMakeContent:        p.median_s = 0.0080; break;
    case RpcOp::kMakeUploadJob:      p.median_s = 0.0063; break;
    case RpcOp::kAddPartToUploadJob: p.median_s = 0.0038; break;
    case RpcOp::kSetUploadJobMultipartId: p.median_s = 0.0031; break;
    case RpcOp::kTouchUploadJob:     p.median_s = 0.0029; break;
    case RpcOp::kDeleteUploadJob:    p.median_s = 0.0041; break;
    // --- cascades: subtree walks, an order of magnitude slower ---
    case RpcOp::kDeleteVolume:       p.median_s = 0.081; break;
    case RpcOp::kGetFromScratch:     p.median_s = 0.052; break;
  }
  // Tail probability per class: the paper reports 7%-22% of samples far
  // from the median, worst for writes that contend on the shard master.
  switch (rpc_class(op)) {
    case RpcClass::kRead:
      p.tail_prob = 0.08;
      p.sigma = 0.55;
      break;
    case RpcClass::kWrite:
      p.tail_prob = 0.18;
      p.sigma = 0.65;
      break;
    case RpcClass::kCascade:
      p.tail_prob = 0.22;
      p.sigma = 0.80;
      break;
  }
  return p;
}

}  // namespace

ServiceTimeModel::ServiceTimeModel() {
  for (const RpcOp op : all_rpc_ops())
    by_op_[static_cast<std::size_t>(op)] = default_params(op);
}

void ServiceTimeModel::set_params(RpcOp op, const ServiceTimeParams& params) {
  if (params.median_s <= 0 || params.sigma <= 0 || params.tail_prob < 0 ||
      params.tail_prob > 1 || params.tail_alpha <= 0 || params.tail_scale < 1)
    throw std::invalid_argument("ServiceTimeModel: bad parameters");
  by_op_[static_cast<std::size_t>(op)] = params;
}

const ServiceTimeParams& ServiceTimeModel::params(RpcOp op) const noexcept {
  return by_op_[static_cast<std::size_t>(op)];
}

SimTime ServiceTimeModel::sample(RpcOp op, Rng& rng) const {
  const ServiceTimeParams& p = by_op_[static_cast<std::size_t>(op)];
  double seconds;
  if (rng.chance(p.tail_prob)) {
    // Tail draw: Pareto starting at tail_scale x median.
    const double u = 1.0 - rng.uniform();
    seconds = p.median_s * p.tail_scale / std::pow(u, 1.0 / p.tail_alpha);
  } else {
    // Body draw: log-normal around the median.
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2 * M_PI * u2);
    seconds = p.median_s * std::exp(p.sigma * z);
  }
  // Clamp to a floor of 100us (queue hop + parse) and a ceiling of 100s
  // (the paper's CDFs end at 10^2 s).
  seconds = std::max(1e-4, std::min(seconds, 100.0));
  return from_seconds(seconds);
}

SimTime ServiceTimeModel::median(RpcOp op) const noexcept {
  return from_seconds(by_op_[static_cast<std::size_t>(op)].median_s);
}

}  // namespace u1
