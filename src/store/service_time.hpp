// Empirical service-time model for DAL RPCs against the metadata store.
//
// Fig. 12 shows per-RPC service-time CDFs with pronounced long tails
// ("from 7% to 22% of RPC service times are very far from the median") and
// Fig. 13 shows that the RPC class (read / write / cascade) strongly
// determines the median: cascades are more than an order of magnitude
// slower than the fastest reads. We model each RPC as a log-normal body
// around a calibrated median, mixed with a Pareto tail that engages with
// a per-class probability — the standard shape for RPC latency in the
// tail-latency literature the paper cites (Li et al., SoCC'14).
#pragma once

#include <array>

#include "proto/operations.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace u1 {

struct ServiceTimeParams {
  double median_s = 0.002;   // body median, seconds
  double sigma = 0.6;        // log-normal spread of the body
  double tail_prob = 0.12;   // probability the sample comes from the tail
  double tail_alpha = 1.3;   // Pareto exponent of the tail
  double tail_scale = 8.0;   // tail starts at median * tail_scale
};

/// Calibrated latency model, one parameter set per RPC operation.
class ServiceTimeModel {
 public:
  /// Default calibration reproducing the shape of Fig. 12/13.
  ServiceTimeModel();

  /// Overrides the parameters for a single RPC (used by ablations/tests).
  void set_params(RpcOp op, const ServiceTimeParams& params);
  const ServiceTimeParams& params(RpcOp op) const noexcept;

  /// Draws a service time. Deterministic given the Rng state.
  SimTime sample(RpcOp op, Rng& rng) const;

  /// The body median as SimTime, handy for benches and assertions.
  SimTime median(RpcOp op) const noexcept;

 private:
  std::array<ServiceTimeParams, kRpcOpCount> by_op_;
};

}  // namespace u1
