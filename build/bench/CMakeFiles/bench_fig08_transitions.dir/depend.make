# Empty dependencies file for bench_fig08_transitions.
# This may be replaced when dependencies are built.
