// Metadata back-end RPC performance (paper §7.1): the per-RPC service-time
// distributions of Fig. 12 (with their long tails) and the Fig. 13 scatter
// of median service time vs operation count by RPC class.
//
// Two fill paths: the exact merged-stream TraceSink path (reservoir
// sample per RPC), and the sharded path (one mergeable QuantileSketch
// per RPC per shard group, folded in group-index order) whose quantiles
// carry the sketch's rank-error bound instead of sampling noise.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/sharded.hpp"
#include "stats/reservoir.hpp"
#include "stats/sketch.hpp"
#include "trace/sink.hpp"

namespace u1 {

class RpcPerfAnalyzer final : public TraceSink, public ShardedAnalyzer {
 public:
  /// cap: reservoir size per RPC type (memory bound for month traces,
  /// merged path only).
  explicit RpcPerfAnalyzer(std::size_t cap = 100000);

  void append(const TraceRecord& record) override;

  // ShardedAnalyzer: per-group sketch shards. Merging any shard flips
  // the analyzer to sketch-backed accessors.
  std::unique_ptr<AnalyzerShard> make_shard() override;
  void merge_shard(AnalyzerShard& shard) override;
  bool sharded() const noexcept { return sharded_; }

  /// Service-time sample (seconds) for one RPC: the uniform reservoir
  /// sample (merged path) or a sorted quantile grid of the sketch
  /// (sharded path) — both feed Ecdf/figure CDFs.
  std::vector<double> service_times(RpcOp op) const;
  std::uint64_t count(RpcOp op) const noexcept;

  /// Median service time in seconds (0 when the RPC never appeared).
  double median_s(RpcOp op) const;
  /// Service-time quantile in seconds (sketch-backed when sharded).
  double quantile_s(RpcOp op, double q) const;

  /// Fraction of samples beyond `factor` x median — the paper's "7% to
  /// 22% of RPC service times are very far from the median".
  double tail_fraction(RpcOp op, double factor = 8.0) const;

  /// The merged sketch (sharded path; throws std::logic_error on the
  /// merged path) — benches read error bounds and memory from it.
  const QuantileSketch& sketch(RpcOp op) const;

  struct ScatterPoint {
    RpcOp op;
    RpcClass rpc_class;
    std::uint64_t count = 0;
    double median_s = 0;
  };
  /// One point per observed RPC — the Fig. 13 scatter.
  std::vector<ScatterPoint> scatter() const;

 private:
  class Shard;

  std::array<ReservoirSampler, kRpcOpCount> samples_;
  std::array<QuantileSketch, kRpcOpCount> sketches_;
  std::array<std::uint64_t, kRpcOpCount> counts_{};
  bool sharded_ = false;
};

}  // namespace u1
