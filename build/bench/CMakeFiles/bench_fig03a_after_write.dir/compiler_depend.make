# Empty compiler generated dependencies file for bench_fig03a_after_write.
# This may be replaced when dependencies are built.
