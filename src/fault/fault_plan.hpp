// Deterministic fault model. A FaultPlan is a small script of failure
// windows — process crashes, machine outages, shard master failovers, S3
// brownouts, MQ notification drops and auth-service brownouts — either
// pinned to absolute times, drawn as seeded Poisson arrivals, or
// triggered by another spec through a dependency edge (`after=<id>`),
// which is how multi-stage incidents (an S3 brownout whose retry storm
// later crashes API processes) are scripted as a DAG. The plan is
// materialized ONCE into a FaultSchedule (a sorted list of begin/end
// events) before the simulation starts, so every engine and every worker
// thread sees the same fault timeline; per-event randomness (victim
// machine, shard, arrival times, edge-trigger draws) is drawn here from
// the fault seed and never from the simulation streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/sim_time.hpp"

namespace u1 {

enum class FaultKind : std::uint8_t {
  kProcessCrash,   // one API process dies; its sessions drop
  kMachineOutage,  // a whole machine (all its processes) goes dark
  kShardFailover,  // shard master degraded until the slave is promoted
  kS3Brownout,     // object-store error-rate + latency-spike window
  kMqDrop,         // notification fabric drops a fraction of publishes
  kAuthBrownout,   // auth service rejects a fraction of verifications
};

std::string_view to_string(FaultKind k) noexcept;
std::optional<FaultKind> fault_kind_from_string(std::string_view s) noexcept;

/// One scripted fault (or a stochastic family of them).
struct FaultSpec {
  FaultKind kind = FaultKind::kS3Brownout;
  SimTime at = 0;        // window start (ignored when rate_per_day > 0)
  SimTime duration = 0;  // window length
  /// > 0: seeded Poisson arrivals at this daily rate over the horizon,
  /// each occurrence lasting `duration`, instead of one window at `at`.
  double rate_per_day = 0;
  /// Optional label (`id=`) other specs can reference via `after=`.
  std::string id;
  /// Dependency edge: when set, this spec fires off every occurrence of
  /// the spec labeled `after` instead of at `at` / Poisson arrivals.
  /// Mutually exclusive with `rate=`.
  std::string after;
  /// Anchor of the edge: the parent window's begin (default) or its end
  /// (`on=end`) — e.g. a failback stampede starts when the outage lifts.
  bool after_end = false;
  double trigger_prob = 1.0;   // `p=`: P(child fires per parent occurrence)
  SimTime trigger_delay = 0;   // `delay=`: gap from the anchor to our begin
  /// 1-based source line, kept for DAG-validation error messages
  /// ("after= references unknown id ..."); 0 for programmatic specs.
  std::size_t line = 0;
  std::uint64_t machine = 0;  // 1-based target; 0 = drawn from fault seed
  std::uint64_t shard = 0;    // 1-based target shard; 0 = drawn
  /// Which of the victim machine's live processes crashes (crash only);
  /// taken modulo the live count when the event fires.
  std::uint64_t slot = 0;
  double error_rate = 0;   // s3/auth: P(request fails) inside the window
  double slow_factor = 1;  // s3 latency / shard service-time multiplier
  double reject_prob = 0;  // failover: P(write rejected at the shard)
  double drop_prob = 0;    // mq: P(notification dropped)
};

struct FaultPlan {
  std::vector<FaultSpec> specs;
  bool empty() const noexcept { return specs.empty(); }
};

/// Parses the --fault-plan text format: one fault per line,
///   <kind> key=value ...
/// with keys t, dur, rate (per day), machine, shard, slot, error, slow,
/// reject, drop — plus the incident-DAG keys id, after, on (begin|end),
/// p and delay. Times accept s/m/h/d suffixes ("36h", "90m", "2d12h").
/// '#' starts a comment. Throws std::invalid_argument with the offending
/// line on malformed input: duplicate keys, probabilities outside [0,1],
/// rate= mixed with after=, unknown after= ids and dependency cycles.
FaultPlan parse_fault_plan(std::string_view text);

/// Resolves each spec's `after` reference to a spec index
/// (FaultPlan::specs order; npos for roots). Throws std::invalid_argument
/// naming the offending line on duplicate ids, unknown references, edges
/// mixed with rate=, or dependency cycles. parse_fault_plan calls this;
/// build_fault_schedule re-validates so programmatic plans get the same
/// guarantees.
std::vector<std::size_t> fault_plan_parents(const FaultPlan& plan);

/// The acceptance-criteria plan used by bench_fault_recovery and the
/// U1SIM_FAULTS=standard knob: one of every fault kind inside a 7-day
/// window (≥1 process crash, ≥1 shard failover, ≥1 S3 brownout).
FaultPlan standard_fault_plan();

/// One scheduled begin or end, delivered as a simulation event.
struct FaultEvent {
  std::size_t id = 0;  // pairs the begin with its end
  FaultKind kind = FaultKind::kS3Brownout;
  bool begin = true;
  SimTime at = 0;
  SimTime duration = 0;  // full window length (carried on both phases)
  std::uint64_t machine = 0;
  std::uint64_t shard = 0;
  std::uint64_t slot = 0;
  double error_rate = 0;
  double slow_factor = 1;
  double reject_prob = 0;
  double drop_prob = 0;
};

using FaultSchedule = std::vector<FaultEvent>;

/// Materializes a plan against a horizon: expands Poisson specs, fires
/// dependency edges (one trigger draw per parent occurrence, whether or
/// not the edge fires, so editing p= never shifts later draws), draws
/// unset machine/shard targets, assigns window ids and returns begin/end
/// events sorted by (time, id, begin-first). Pure function of its
/// arguments — every group, engine and the u1d live server derive the
/// identical timeline. Throws std::invalid_argument on DAG violations
/// (unknown after= ids, cycles).
FaultSchedule build_fault_schedule(const FaultPlan& plan, SimTime horizon,
                                   std::size_t machine_count,
                                   std::size_t shard_count,
                                   std::uint64_t seed);

/// The trace `fault` column payload, e.g. "s3_brownout#2:begin".
std::string fault_label(const FaultEvent& ev);

}  // namespace u1
