#include "analysis/ddos_detect.hpp"

#include <algorithm>
#include <set>

#include "stats/summary.hpp"

namespace u1 {

DdosAnalyzer::DdosAnalyzer(SimTime start, SimTime end)
    : rpc_(start, end, kHour),
      session_(start, end, kHour),
      auth_(start, end, kHour),
      storage_(start, end, kHour) {}

void DdosAnalyzer::append(const TraceRecord& r) {
  if (r.t < 0) return;
  switch (r.type) {
    case RecordType::kRpc:
      rpc_.add(r.t);
      break;
    case RecordType::kSession:
      session_.add(r.t);
      if (r.session_event == SessionEvent::kAuthRequest) auth_.add(r.t);
      break;
    case RecordType::kStorage:
      storage_.add(r.t);
      break;
    case RecordType::kStorageDone:
    case RecordType::kFault:
      break;
  }
}

std::vector<DdosAnalyzer::AttackWindow> DdosAnalyzer::detect(
    double threshold) const {
  const std::size_t n = session_.bins();
  std::vector<double> level(n);
  for (std::size_t i = 0; i < n; ++i)
    level[i] = session_.value(i) + auth_.value(i);
  // Robust baseline: the median hourly level (attacks are rare enough not
  // to move it).
  std::vector<double> sorted = level;
  std::sort(sorted.begin(), sorted.end());
  const double baseline = sorted.empty() ? 0 : sorted[sorted.size() / 2];
  if (baseline <= 0) return {};

  std::vector<double> api_level(n);
  for (std::size_t i = 0; i < n; ++i)
    api_level[i] = storage_.value(i) + session_.value(i);
  std::vector<double> api_sorted = api_level;
  std::sort(api_sorted.begin(), api_sorted.end());
  const double api_baseline =
      api_sorted.empty() ? 0 : api_sorted[api_sorted.size() / 2];

  std::vector<AttackWindow> out;
  std::size_t i = 0;
  while (i < n) {
    if (level[i] <= threshold * baseline) {
      ++i;
      continue;
    }
    AttackWindow w;
    w.first_hour = i;
    double peak = 0, api_peak = 0;
    while (i < n && level[i] > threshold * baseline) {
      peak = std::max(peak, level[i]);
      api_peak = std::max(api_peak, api_level[i]);
      w.last_hour = i;
      ++i;
    }
    w.peak_multiplier = peak / baseline;
    w.api_multiplier = api_baseline > 0 ? api_peak / api_baseline : 0;
    out.push_back(w);
  }
  return out;
}

std::size_t DdosAnalyzer::attack_days(double threshold) const {
  std::set<int> days;
  for (const AttackWindow& w : detect(threshold)) {
    for (std::size_t h = w.first_hour; h <= w.last_hour; ++h)
      days.insert(day_index(session_.bin_start(h)));
  }
  return days.size();
}

}  // namespace u1
