#include "workload/ddos.hpp"

#include <algorithm>
#include <stdexcept>

namespace u1 {

std::vector<DdosAttackSpec> paper_attack_schedule(double bot_scale) {
  if (bot_scale <= 0)
    throw std::invalid_argument("paper_attack_schedule: bot_scale <= 0");
  auto scaled = [&](double n) {
    return static_cast<std::uint32_t>(std::max(1.0, n * bot_scale));
  };

  // Calibration: at the default 10k-user population the background load
  // is ~300 sessions/hour and ~1.5k storage ops/hour. The fleets below
  // reproduce the paper's signature — session/auth request spikes of
  // 5-15x and API-activity spikes ordered Jan16 >> Feb6 > Jan15 (the
  // paper's 245x / 6.7x / 4.6x) — while keeping attack traffic from
  // drowning the month's byte counts (Fig. 2a avoids the attack days).
  DdosAttackSpec jan15;
  jan15.start = 4 * kDay + 10 * kHour;  // mid-morning Jan 15
  jan15.response_delay = 3 * kHour;
  jan15.bots = scaled(150);  // API activity ~4.6x
  jan15.connects_per_hour = 8.0;
  jan15.downloads_per_connection = 4;
  jan15.payload_bytes = 400ull * 1024;

  DdosAttackSpec jan16;
  jan16.start = 5 * kDay + 9 * kHour;  // Jan 16, the big one (245x)
  jan16.response_delay = 2 * kHour;
  jan16.bots = scaled(500);
  jan16.connects_per_hour = 9.0;
  jan16.downloads_per_connection = 30;
  jan16.payload_bytes = 300ull * 1024;

  DdosAttackSpec feb06;
  feb06.start = 26 * kDay + 12 * kHour;  // Feb 6
  feb06.response_delay = 2 * kHour;
  feb06.bots = scaled(180);  // ~6.7x
  feb06.connects_per_hour = 8.0;
  feb06.downloads_per_connection = 6;
  feb06.payload_bytes = 400ull * 1024;

  return {jan15, jan16, feb06};
}

}  // namespace u1
