#include "trace/record.hpp"

#include <gtest/gtest.h>

#include "util/sha1.hpp"

namespace u1 {
namespace {

TraceRecord sample_storage_record() {
  Rng rng(1);
  TraceRecord r;
  r.t = 3 * kDay + 7 * kHour + 123 * kMillisecond;
  r.type = RecordType::kStorageDone;
  r.machine = MachineId{2};
  r.process = ProcessId{23};
  r.user = UserId{99};
  r.session = SessionId{1234};
  r.api_op = ApiOp::kPutContent;
  r.node = Uuid::v4(rng);
  r.parent = Uuid::v4(rng);
  r.volume = Uuid::v4(rng);
  r.size_bytes = 123456;
  r.transferred_bytes = 123456;
  r.content = Sha1::of("content");
  r.extension = "mp3";
  r.is_update = true;
  r.duration = 2 * kSecond;
  return r;
}

TEST(TraceRecord, CsvRoundTripStorage) {
  const TraceRecord r = sample_storage_record();
  const auto parsed = TraceRecord::from_csv(r.to_csv());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->t, r.t);
  EXPECT_EQ(parsed->type, r.type);
  EXPECT_EQ(parsed->machine, r.machine);
  EXPECT_EQ(parsed->process, r.process);
  EXPECT_EQ(parsed->user, r.user);
  EXPECT_EQ(parsed->session, r.session);
  EXPECT_EQ(parsed->api_op, r.api_op);
  EXPECT_EQ(parsed->node, r.node);
  EXPECT_EQ(parsed->parent, r.parent);
  EXPECT_EQ(parsed->volume, r.volume);
  EXPECT_EQ(parsed->size_bytes, r.size_bytes);
  EXPECT_EQ(parsed->transferred_bytes, r.transferred_bytes);
  EXPECT_EQ(parsed->content, r.content);
  EXPECT_EQ(parsed->extension, r.extension);
  EXPECT_EQ(parsed->is_update, r.is_update);
  EXPECT_EQ(parsed->duration, r.duration);
}

TEST(TraceRecord, CsvRoundTripRpc) {
  TraceRecord r;
  r.t = kHour;
  r.type = RecordType::kRpc;
  r.machine = MachineId{1};
  r.process = ProcessId{5};
  r.user = UserId{7};
  r.session = SessionId{8};
  r.rpc_op = RpcOp::kMakeContent;
  r.shard = ShardId{4};
  r.service_time = 8 * kMillisecond;
  const auto parsed = TraceRecord::from_csv(r.to_csv());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rpc_op, r.rpc_op);
  EXPECT_EQ(parsed->shard, r.shard);
  EXPECT_EQ(parsed->service_time, r.service_time);
}

TEST(TraceRecord, CsvRoundTripSession) {
  TraceRecord r;
  r.t = 2 * kHour;
  r.type = RecordType::kSession;
  r.machine = MachineId{3};
  r.process = ProcessId{9};
  r.user = UserId{11};
  r.session = SessionId{12};
  r.session_event = SessionEvent::kClose;
  r.duration = 45 * kMinute;
  const auto parsed = TraceRecord::from_csv(r.to_csv());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->session_event, SessionEvent::kClose);
  EXPECT_EQ(parsed->duration, 45 * kMinute);
}

TEST(TraceRecord, FromCsvRejectsMalformed) {
  EXPECT_FALSE(TraceRecord::from_csv({}).has_value());
  EXPECT_FALSE(TraceRecord::from_csv({"only", "two"}).has_value());
  auto fields = sample_storage_record().to_csv();
  fields[0] = "not-a-number";
  EXPECT_FALSE(TraceRecord::from_csv(fields).has_value());
  fields = sample_storage_record().to_csv();
  fields[1] = "bogus_type";
  EXPECT_FALSE(TraceRecord::from_csv(fields).has_value());
  fields = sample_storage_record().to_csv();
  fields[13] = "nothex";
  EXPECT_FALSE(TraceRecord::from_csv(fields).has_value());
}

TEST(TraceRecord, HeaderMatchesColumnCount) {
  const TraceRecord r = sample_storage_record();
  EXPECT_EQ(r.to_csv().size(), TraceRecord::csv_header().size());
}

TEST(TraceRecord, LognameFormat) {
  TraceRecord r;
  r.t = 17 * kDay;  // 2014-01-28
  r.machine = MachineId{1};
  r.process = ProcessId{23};
  EXPECT_EQ(r.logname(), "production-whitecurrant-23-20140128");
}

TEST(TraceRecord, MachineNamesStable) {
  EXPECT_EQ(machine_name(MachineId{1}), "whitecurrant");
  EXPECT_EQ(machine_name(MachineId{2}), "blackcurrant");
  EXPECT_EQ(machine_name(MachineId{0}), "unassigned");
}

TEST(RecordType, StringRoundTrip) {
  for (const RecordType t :
       {RecordType::kSession, RecordType::kStorage, RecordType::kStorageDone,
        RecordType::kRpc}) {
    const auto back = record_type_from_string(to_string(t));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, t);
  }
  EXPECT_FALSE(record_type_from_string("nope").has_value());
}

TEST(SessionEvent, StringRoundTrip) {
  for (const SessionEvent e :
       {SessionEvent::kNone, SessionEvent::kAuthRequest,
        SessionEvent::kAuthOk, SessionEvent::kAuthFail, SessionEvent::kOpen,
        SessionEvent::kClose}) {
    const auto back = session_event_from_string(to_string(e));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, e);
  }
  EXPECT_FALSE(session_event_from_string("garbage").has_value());
}

}  // namespace
}  // namespace u1
