#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

namespace u1 {
namespace {

TEST(TimeBinSeries, BinAssignment) {
  TimeBinSeries s(0, 3 * kHour, kHour);
  ASSERT_EQ(s.bins(), 3u);
  s.add(0);
  s.add(kHour - 1);
  s.add(kHour);
  s.add(2 * kHour + 30 * kMinute, 2.0);
  EXPECT_DOUBLE_EQ(s.value(0), 2.0);
  EXPECT_DOUBLE_EQ(s.value(1), 1.0);
  EXPECT_DOUBLE_EQ(s.value(2), 2.0);
}

TEST(TimeBinSeries, OutOfRangeDropped) {
  TimeBinSeries s(kHour, 2 * kHour, kHour);
  s.add(0);
  s.add(5 * kHour);
  s.add(kHour);
  EXPECT_EQ(s.dropped(), 2u);
  EXPECT_DOUBLE_EQ(s.value(0), 1.0);
}

TEST(TimeBinSeries, PartialLastBin) {
  // Range not divisible by width: last partial bin still exists.
  TimeBinSeries s(0, kHour + kMinute, kHour);
  ASSERT_EQ(s.bins(), 2u);
  s.add(kHour + 30 * kSecond);
  EXPECT_DOUBLE_EQ(s.value(1), 1.0);
}

TEST(TimeBinSeries, BinStart) {
  TimeBinSeries s(kDay, 2 * kDay, kHour);
  EXPECT_EQ(s.bin_start(0), kDay);
  EXPECT_EQ(s.bin_start(5), kDay + 5 * kHour);
  EXPECT_THROW(s.bin_start(24), std::out_of_range);
}

TEST(TimeBinSeries, RejectsBadRange) {
  EXPECT_THROW(TimeBinSeries(10, 10, kHour), std::invalid_argument);
  EXPECT_THROW(TimeBinSeries(0, kHour, 0), std::invalid_argument);
}

TEST(DistinctPerBin, CountsDistinctEntities) {
  DistinctPerBin d(0, 2 * kHour, kHour);
  d.add(0, 1);
  d.add(1, 1);  // same entity, same bin -> still 1
  d.add(2, 2);
  d.add(kHour, 1);
  EXPECT_DOUBLE_EQ(d.count(0), 2.0);
  EXPECT_DOUBLE_EQ(d.count(1), 1.0);
}

TEST(DistinctPerBin, NonAdjacentDuplicatesDeduped) {
  DistinctPerBin d(0, kHour, kHour);
  d.add(0, 7);
  d.add(1, 9);
  d.add(2, 7);  // 7 again after a 9 — must still count once
  EXPECT_DOUBLE_EQ(d.count(0), 2.0);
}

TEST(DistinctPerBin, IntervalSpansBins) {
  DistinctPerBin d(0, 5 * kHour, kHour);
  // Session online from 00:30 to 03:30 → hours 0,1,2,3.
  d.add_interval(30 * kMinute, 3 * kHour + 30 * kMinute, 42);
  EXPECT_DOUBLE_EQ(d.count(0), 1.0);
  EXPECT_DOUBLE_EQ(d.count(1), 1.0);
  EXPECT_DOUBLE_EQ(d.count(2), 1.0);
  EXPECT_DOUBLE_EQ(d.count(3), 1.0);
  EXPECT_DOUBLE_EQ(d.count(4), 0.0);
}

TEST(DistinctPerBin, IntervalWithinOneBin) {
  DistinctPerBin d(0, 2 * kHour, kHour);
  d.add_interval(10 * kMinute, 20 * kMinute, 5);
  EXPECT_DOUBLE_EQ(d.count(0), 1.0);
  EXPECT_DOUBLE_EQ(d.count(1), 0.0);
}

TEST(DistinctPerBin, CountsVectorMatches) {
  DistinctPerBin d(0, 3 * kHour, kHour);
  d.add(0, 1);
  d.add(kHour, 1);
  d.add(kHour, 2);
  const auto c = d.counts();
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
  EXPECT_DOUBLE_EQ(c[2], 0.0);
}

}  // namespace
}  // namespace u1
