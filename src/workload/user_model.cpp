#include "workload/user_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace u1 {
namespace {

std::vector<double> class_weights(const UserModelParams& p) {
  return {p.p_occasional, p.p_upload_only, p.p_download_only, p.p_heavy};
}

}  // namespace

std::string_view to_string(UserClass c) noexcept {
  switch (c) {
    case UserClass::kOccasional: return "occasional";
    case UserClass::kUploadOnly: return "upload-only";
    case UserClass::kDownloadOnly: return "download-only";
    case UserClass::kHeavy: return "heavy";
  }
  return "unknown";
}

UserModel::UserModel(const UserModelParams& params)
    : params_(params), class_mix_(class_weights(params)) {
  const double total = params.p_occasional + params.p_upload_only +
                       params.p_download_only + params.p_heavy;
  if (std::abs(total - 1.0) > 1e-6)
    throw std::invalid_argument("UserModelParams: class mix must sum to 1");
  if (params.activity_alpha <= 1.0)
    throw std::invalid_argument(
        "UserModelParams: activity_alpha must exceed 1 (finite mean)");
}

UserProfile UserModel::sample(Rng& rng) const {
  UserProfile profile;
  profile.user_class = static_cast<UserClass>(class_mix_.sample(rng));

  // Pareto activity multiplier; heavy users draw from a shifted, heavier
  // regime so the top 1% ends up with ~65% of the traffic (Fig. 7c).
  const ParetoDist tail(params_.activity_alpha, 1.0);
  switch (profile.user_class) {
    case UserClass::kOccasional:
      // Most of the population barely transfers anything in a month
      // (paper: 85.8% of users moved < 10KB).
      profile.activity = rng.uniform(0.5, 1.5);
      profile.sessions_per_day = rng.uniform(0.4, 2.0);
      profile.active_session_prob = 0.003;
      break;
    case UserClass::kUploadOnly:
    case UserClass::kDownloadOnly:
      profile.activity = tail.sample(rng);
      profile.sessions_per_day = rng.uniform(0.8, 3.0);
      profile.active_session_prob = 0.05;
      break;
    case UserClass::kHeavy:
      profile.activity = 1.5 * tail.sample(rng);
      profile.sessions_per_day = rng.uniform(1.0, 4.0);
      profile.active_session_prob = 0.12;
      break;
  }

  if (rng.chance(params_.p_has_udf)) {
    // Most UDF owners have 1-3 volumes; a few have many (Fig. 11 tail).
    profile.udf_volumes = 1;
    while (profile.udf_volumes < 40 && rng.chance(0.30))
      ++profile.udf_volumes;
  }
  profile.sharer = rng.chance(params_.p_sharer);
  return profile;
}

SimTime UserModel::sample_session_length(Rng& rng) const {
  const double u = rng.uniform();
  if (u < 0.32) {
    // NAT/firewall-killed connections: well under a second.
    return from_seconds(rng.uniform(0.01, 0.99));
  }
  if (u < 0.45) {
    // Short restarts / flaky links: seconds to a couple of minutes.
    return from_seconds(rng.uniform(1.0, 120.0));
  }
  if (u < 0.97) {
    // Work-day sessions: log-normal body, median ~35 minutes, <= 8h.
    const double u1 = 1.0 - rng.uniform();
    const double u2 = rng.uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2 * M_PI * u2);
    const double minutes = 35.0 * std::exp(1.1 * z);
    return from_seconds(std::clamp(minutes, 2.0, 479.0) * 60.0);
  }
  // The 3% long tail: overnight / always-on machines, 8h .. 4 days.
  return from_seconds(rng.uniform(8.0 * 3600.0, 96.0 * 3600.0));
}

std::uint64_t UserModel::sample_session_ops(UserClass user_class,
                                            Rng& rng) const {
  // Heavy-tailed ops budget: Pareto truncated at 20k, scaled by class.
  // Calibrated so ~80% of active sessions stay below ~92 ops while the
  // top 20% carries the bulk of operations (paper: 96.7%).
  const double x_min = user_class == UserClass::kHeavy ? 12.0 : 3.0;
  const double alpha = 0.80;
  const double u = 1.0 - rng.uniform();
  const double draw = x_min / std::pow(u, 1.0 / alpha);
  return static_cast<std::uint64_t>(std::min(draw, 20000.0));
}

}  // namespace u1
