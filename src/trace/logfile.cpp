#include "trace/logfile.hpp"

#include <algorithm>
#include <system_error>

#include "trace/binlog.hpp"
#include "util/csv.hpp"

namespace u1 {

LogfileWriter::LogfileWriter(std::filesystem::path directory)
    : dir_(std::move(directory)) {
  std::filesystem::create_directories(dir_);
}

LogfileWriter::~LogfileWriter() { close(); }

void LogfileWriter::append(const TraceRecord& record) {
  const std::string name = record.logname();
  auto it = files_.find(name);
  if (it == files_.end()) {
    auto stream = std::make_unique<std::ofstream>(dir_ / (name + ".csv"));
    if (!stream->is_open())
      throw std::runtime_error("LogfileWriter: cannot open " + name);
    CsvWriter header(*stream);
    header.write_row(TraceRecord::csv_header());
    it = files_.emplace(name, std::move(stream)).first;
  }
  CsvWriter writer(*it->second);
  writer.write_row(record.to_csv());
}

void LogfileWriter::close() {
  for (auto& [name, stream] : files_) stream->flush();
  files_.clear();
}

ReadStats read_logfile(const std::filesystem::path& file,
                       std::vector<TraceRecord>& out) {
  ReadStats stats;
  std::ifstream in(file, std::ios::binary);
  if (!in.is_open())
    throw std::runtime_error("read_logfile: cannot open " + file.string());
  {  // sniff the leading magic: binary logfiles are never valid CSV
    unsigned char magic[8] = {};
    in.read(reinterpret_cast<char*>(magic),
            static_cast<std::streamsize>(sizeof(magic)));
    const auto got = static_cast<std::size_t>(in.gcount());
    if (is_binary_logfile_magic(magic, got)) {
      in.close();
      return read_binary_logfile(file, out);
    }
    in.clear();
    in.seekg(0);
  }
  stats.files = 1;
  std::error_code ec;
  const auto size = std::filesystem::file_size(file, ec);
  if (!ec) stats.bytes_read += size;
  CsvReader reader(in);
  std::vector<std::string> fields;
  bool first = true;
  while (reader.next(fields)) {
    ++stats.rows;
    if (first) {
      first = false;
      if (!fields.empty() && fields[0] == "t_us") continue;  // header
    }
    if (auto rec = TraceRecord::from_csv(fields)) {
      out.push_back(std::move(*rec));
      ++stats.parsed;
    } else {
      ++stats.malformed;
    }
  }
  stats.malformed += reader.error_count();
  stats.rows += reader.error_count();
  return stats;
}

ReadStats read_logfiles(const std::filesystem::path& directory,
                        TraceSink& sink) {
  ReadStats stats;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("production-")) continue;
    // Symbol sidecars ride along with their .u1b logfile; they are not
    // logfiles themselves.
    if (entry.path().extension() == kSymbolSidecarExt) continue;
    paths.push_back(entry.path());
  }
  // Directory iteration order is unspecified; name order makes the merge
  // (and any tie-breaking below) deterministic across filesystems.
  std::sort(paths.begin(), paths.end());
  std::vector<TraceRecord> all;
  for (const auto& path : paths) stats.add(read_logfile(path, all));
  // CSV serialization prints t as unsigned, so pre-trace bootstrap
  // records (t < 0) have never survived the text parse — they count as
  // malformed rows. Binary files decode them losslessly; drop them here
  // so analyzers see the identical stream whichever format the
  // directory holds. (Raw per-file access — read_logfile, `u1trace
  // convert` — still delivers every record.)
  const auto dropped = static_cast<std::uint64_t>(
      all.end() - std::remove_if(all.begin(), all.end(),
                                 [](const TraceRecord& r) { return r.t < 0; }));
  all.resize(all.size() - dropped);
  stats.parsed -= dropped;
  stats.malformed += dropped;
  // Stable sort keeps intra-process (already causal) order for ties.
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.t < b.t;
                   });
  sink.append_batch(all.data(), all.size());
  return stats;
}

}  // namespace u1
