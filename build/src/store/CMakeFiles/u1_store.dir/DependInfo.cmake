
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/content_registry.cpp" "src/store/CMakeFiles/u1_store.dir/content_registry.cpp.o" "gcc" "src/store/CMakeFiles/u1_store.dir/content_registry.cpp.o.d"
  "/root/repo/src/store/metadata_store.cpp" "src/store/CMakeFiles/u1_store.dir/metadata_store.cpp.o" "gcc" "src/store/CMakeFiles/u1_store.dir/metadata_store.cpp.o.d"
  "/root/repo/src/store/service_time.cpp" "src/store/CMakeFiles/u1_store.dir/service_time.cpp.o" "gcc" "src/store/CMakeFiles/u1_store.dir/service_time.cpp.o.d"
  "/root/repo/src/store/shard.cpp" "src/store/CMakeFiles/u1_store.dir/shard.cpp.o" "gcc" "src/store/CMakeFiles/u1_store.dir/shard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/u1_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/u1_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
