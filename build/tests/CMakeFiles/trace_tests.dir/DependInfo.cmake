
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/record_test.cpp" "tests/CMakeFiles/trace_tests.dir/trace/record_test.cpp.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/record_test.cpp.o.d"
  "/root/repo/tests/trace/sink_logfile_test.cpp" "tests/CMakeFiles/trace_tests.dir/trace/sink_logfile_test.cpp.o" "gcc" "tests/CMakeFiles/trace_tests.dir/trace/sink_logfile_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/u1_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/u1_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/u1_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
