// File size & type analysis (paper §5.3, Fig. 4b/4c): per-extension file
// size distributions, the global "90% of files < 1MB" CDF, and the
// count-share vs storage-share scatter of the 7 file categories. A file is
// counted once, at its first upload (updates change the size in place).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/sink.hpp"
#include "trace/symbols.hpp"
#include "workload/file_model.hpp"

namespace u1 {

class FileTypeAnalyzer final : public TraceSink {
 public:
  void append(const TraceRecord& record) override;

  /// Sizes (bytes) of distinct files, overall and for one extension.
  std::vector<double> all_sizes() const;
  std::vector<double> sizes_of(const std::string& extension) const;

  /// Fraction of files smaller than `bytes` (paper: 0.90 below 1MB).
  double fraction_below(double bytes) const;

  struct CategoryShare {
    FileCategory category;
    double file_share = 0;     // fraction of files
    double storage_share = 0;  // fraction of bytes
  };
  /// The Fig. 4c scatter, one entry per category that appeared.
  std::vector<CategoryShare> category_shares() const;

  /// Extensions ordered by file count (most popular first).
  std::vector<std::string> popular_extensions(std::size_t top_n) const;

  std::uint64_t distinct_files() const noexcept { return files_.size(); }

 private:
  struct FileInfo {
    std::uint64_t size = 0;
    std::uint16_t ext_index = 0;
  };
  std::uint16_t intern(Symbol label, std::string_view extension);

  std::unordered_map<NodeId, FileInfo> files_;
  std::vector<std::string> extensions_;  // interned extension names
  std::unordered_map<std::string, std::uint16_t> ext_index_;
  /// Record label -> ext_index fast path: the hot append never hashes
  /// the extension string, only its global symbol id.
  std::unordered_map<Symbol, std::uint16_t> label_index_;
};

}  // namespace u1
