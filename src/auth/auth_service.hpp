// The Canonical OAuth-based single-sign-on service (§3.4.1): shared with
// other Canonical services, 1 database server + 2 application servers.
// First contact exchanges credentials for a token tied to a user id;
// later connections verify the stored token. The paper measures this
// subsystem's request rate (Fig. 15) and a 2.76% request failure rate,
// which we model with an injectable failure probability.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "proto/ids.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace u1 {

struct AuthToken {
  TokenId id;
  UserId user;
  SimTime issued_at = 0;
  bool revoked = false;
};

struct AuthStats {
  std::uint64_t issue_requests = 0;
  std::uint64_t verify_requests = 0;
  std::uint64_t failures = 0;  // transient service failures (paper: 2.76%)
  std::uint64_t rejects = 0;   // unknown/revoked tokens
};

class AuthService {
 public:
  /// failure_rate: probability that any request transiently fails (the
  /// caller may retry); the paper measured 2.76% of authentication
  /// requests from API servers failing.
  explicit AuthService(std::uint64_t seed = 0xa17ed0c5,
                       double failure_rate = 0.0276);

  /// First-time flow: exchanges credentials for a token. Returns nullopt
  /// on transient failure.
  std::optional<AuthToken> issue_token(UserId user, SimTime now);

  /// Returning-user flow: looks up the token, returns the associated user
  /// id if valid. nullopt covers both transient failure and rejection;
  /// stats() distinguishes them.
  std::optional<UserId> verify_token(const TokenId& token, SimTime now);

  /// Administrative revocation — the countermeasure U1 engineers applied
  /// manually during DDoS attacks (§5.4).
  bool revoke_user_tokens(UserId user);

  const AuthStats& stats() const noexcept { return stats_; }
  std::size_t live_tokens() const noexcept { return tokens_.size(); }
  double failure_rate() const noexcept { return failure_rate_; }

 private:
  Rng rng_;
  double failure_rate_;
  std::unordered_map<TokenId, AuthToken> tokens_;
  AuthStats stats_;
};

}  // namespace u1
