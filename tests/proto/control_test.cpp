// Control-plane codec battery (DESIGN.md §12): round-trips for every
// epoch-barrier message, pinned wire op bytes, and the PR-7 hostile
// battery extended over the control frames — truncation at every field
// boundary, oversized length prefixes, version skew, slack payloads,
// foreign op bytes and hostile count fields. The coordinator/worker
// sockets feed decoded frames straight into the barrier relay, so every
// rejection here is a connection the distributed engine refuses to
// trust rather than a crash or a silent mis-merge.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "proto/control.hpp"
#include "proto/envelope.hpp"

namespace u1 {
namespace {

EpochBeginMsg sample_begin() {
  EpochBeginMsg m;
  m.seq = 41;
  m.tail = false;
  m.dedup_logs = {{1, 2, 3}, {}, {0xff, 0x00, 0x7f, 0x80}};
  m.pool_deltas = {{9}, {8, 7}, {}};
  return m;
}

EpochDoneMsg sample_done() {
  EpochDoneMsg m;
  m.seq = 7;
  m.tail = true;
  m.first_group = 4;
  m.dedup_logs = {{5, 6}};
  m.pool_deltas = {{}};
  m.feed = {{.t = 3600, .user = 99, .session_event = 2},
            {.t = 7200, .user = 11, .session_event = 0}};
  return m;
}

// ---------------------------------------------------------------------------
// Round-trips: encode -> frame -> split -> decode must reproduce the
// message exactly, including empty vectors and boundary values.

TEST(ControlCodec, EpochBeginRoundTrip) {
  const EpochBeginMsg in = sample_begin();
  std::vector<std::uint8_t> wire;
  append_control_frame(wire, ProtoOp::kEpochBegin, encode_epoch_begin(in));

  ProtoOp op{};
  std::span<const std::uint8_t> payload;
  const FrameDecode fd = split_control_frame(wire.data(), wire.size(), op,
                                             payload);
  ASSERT_EQ(fd.status, Status::kOk);
  EXPECT_EQ(fd.consumed, wire.size());
  EXPECT_EQ(op, ProtoOp::kEpochBegin);

  EpochBeginMsg out;
  ASSERT_EQ(decode_epoch_begin(payload, out), Status::kOk);
  EXPECT_EQ(out, in);
}

TEST(ControlCodec, MailboxBatchRoundTripIncludingEmpty) {
  for (const bool empty : {false, true}) {
    MailboxBatchMsg in;
    in.seq = 123456789;
    if (!empty)
      in.entries = {{0, 42}, {3, ~0ull}, {65535, 1}};
    std::vector<std::uint8_t> wire;
    append_control_frame(wire, ProtoOp::kMailboxBatch,
                         encode_mailbox_batch(in));
    ProtoOp op{};
    std::span<const std::uint8_t> payload;
    ASSERT_EQ(split_control_frame(wire.data(), wire.size(), op, payload)
                  .status,
              Status::kOk);
    EXPECT_EQ(op, ProtoOp::kMailboxBatch);
    MailboxBatchMsg out;
    ASSERT_EQ(decode_mailbox_batch(payload, out), Status::kOk);
    EXPECT_EQ(out, in);
  }
}

TEST(ControlCodec, EpochDoneRoundTrip) {
  const EpochDoneMsg in = sample_done();
  std::vector<std::uint8_t> wire;
  append_control_frame(wire, ProtoOp::kEpochDone, encode_epoch_done(in));
  ProtoOp op{};
  std::span<const std::uint8_t> payload;
  ASSERT_EQ(split_control_frame(wire.data(), wire.size(), op, payload).status,
            Status::kOk);
  EXPECT_EQ(op, ProtoOp::kEpochDone);
  EpochDoneMsg out;
  ASSERT_EQ(decode_epoch_done(payload, out), Status::kOk);
  EXPECT_EQ(out, in);
}

TEST(ControlCodec, ChunkMetaRoundTrip) {
  ChunkMetaMsg in;
  in.seq = 50;
  in.counters = {0, 1, ~0ull, 18446744073709551614ull};
  in.timings = {0.0, 1.5, -2.25, 1e300};
  std::vector<std::uint8_t> wire;
  append_control_frame(wire, ProtoOp::kChunkMeta, encode_chunk_meta(in));
  ProtoOp op{};
  std::span<const std::uint8_t> payload;
  ASSERT_EQ(split_control_frame(wire.data(), wire.size(), op, payload).status,
            Status::kOk);
  EXPECT_EQ(op, ProtoOp::kChunkMeta);
  ChunkMetaMsg out;
  ASSERT_EQ(decode_chunk_meta(payload, out), Status::kOk);
  EXPECT_EQ(out, in);
}

TEST(ControlCodec, ShutdownRoundTrip) {
  ShutdownMsg in;
  in.code = 1;
  in.message = "worker 2: segment write failed";
  std::vector<std::uint8_t> wire;
  append_control_frame(wire, ProtoOp::kShutdown, encode_shutdown(in));
  ProtoOp op{};
  std::span<const std::uint8_t> payload;
  ASSERT_EQ(split_control_frame(wire.data(), wire.size(), op, payload).status,
            Status::kOk);
  EXPECT_EQ(op, ProtoOp::kShutdown);
  ShutdownMsg out;
  ASSERT_EQ(decode_shutdown(payload, out), Status::kOk);
  EXPECT_EQ(out, in);
}

TEST(ControlCodec, WireOpBytesArePinned) {
  // The op bytes are the cross-process ABI; renumbering the enum would
  // silently break mixed-version coordinator/worker pairs.
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kEpochBegin), 18);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kMailboxBatch), 19);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kEpochDone), 20);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kChunkMeta), 21);
  EXPECT_EQ(static_cast<std::uint8_t>(ProtoOp::kShutdown), 22);
  for (std::uint8_t b = 18; b <= 22; ++b)
    EXPECT_TRUE(control_op_from_wire(b).has_value()) << int(b);
  EXPECT_FALSE(control_op_from_wire(17).has_value());
  EXPECT_FALSE(control_op_from_wire(23).has_value());
  // Request-plane bytes must not decode as control ops (plane split).
  EXPECT_FALSE(control_op_from_wire(0).has_value());
}

// ---------------------------------------------------------------------------
// Hostile battery: the framing layer.

TEST(ControlHostile, ShortHeaderNeedsMore) {
  const std::uint8_t partial[] = {10, 0, 0};
  ProtoOp op{};
  std::span<const std::uint8_t> payload;
  const FrameDecode fd = split_control_frame(partial, sizeof partial, op,
                                             payload);
  EXPECT_TRUE(fd.need_more);
  EXPECT_EQ(fd.consumed, 0u);
}

TEST(ControlHostile, TruncatedBodyNeedsMoreAtEveryPrefix) {
  std::vector<std::uint8_t> wire;
  append_control_frame(wire, ProtoOp::kEpochBegin,
                       encode_epoch_begin(sample_begin()));
  for (std::size_t n = 4; n < wire.size(); ++n) {
    ProtoOp op{};
    std::span<const std::uint8_t> payload;
    const FrameDecode fd = split_control_frame(wire.data(), n, op, payload);
    EXPECT_TRUE(fd.need_more) << "prefix " << n;
    EXPECT_EQ(fd.status, Status::kOk) << "prefix " << n;
  }
}

TEST(ControlHostile, OversizedLengthPrefixConsumesNothing) {
  std::vector<std::uint8_t> wire(64, 0xee);
  const std::uint32_t len = kMaxControlFrameBytes + 1;
  wire[0] = static_cast<std::uint8_t>(len);
  wire[1] = static_cast<std::uint8_t>(len >> 8);
  wire[2] = static_cast<std::uint8_t>(len >> 16);
  wire[3] = static_cast<std::uint8_t>(len >> 24);
  ProtoOp op{};
  std::span<const std::uint8_t> payload;
  const FrameDecode fd = split_control_frame(wire.data(), wire.size(), op,
                                             payload);
  EXPECT_EQ(fd.status, Status::kOversizedFrame);
  EXPECT_TRUE(is_protocol_error(fd.status));
  EXPECT_EQ(fd.consumed, 0u);  // no trustworthy resync point: drop the peer
}

TEST(ControlHostile, RuntLengthIsBadFrameButConsumed) {
  // len == 2 cannot hold version+op; the frame is still consumed so the
  // stream can resync at the next length prefix.
  const std::uint8_t runt[] = {2, 0, 0, 0, 0xaa, 0xbb};
  ProtoOp op{};
  std::span<const std::uint8_t> payload;
  const FrameDecode fd = split_control_frame(runt, sizeof runt, op, payload);
  EXPECT_EQ(fd.status, Status::kBadFrame);
  EXPECT_EQ(fd.consumed, sizeof runt);
}

TEST(ControlHostile, VersionMismatchRejectedPerFrame) {
  std::vector<std::uint8_t> wire;
  append_control_frame(wire, ProtoOp::kShutdown, encode_shutdown({}));
  wire[4] = 0x63;  // bogus version
  ProtoOp op{};
  std::span<const std::uint8_t> payload;
  const FrameDecode fd = split_control_frame(wire.data(), wire.size(), op,
                                             payload);
  EXPECT_EQ(fd.status, Status::kVersionMismatch);
  EXPECT_EQ(fd.consumed, wire.size());
}

TEST(ControlHostile, RequestPlaneOpOnControlStreamIsUnknown) {
  // A kConnect byte inside a control frame: the planes must not mix.
  std::vector<std::uint8_t> wire;
  append_control_frame(wire, ProtoOp::kShutdown, encode_shutdown({}));
  wire[6] = 1;  // a request-plane wire byte
  ProtoOp op{};
  std::span<const std::uint8_t> payload;
  const FrameDecode fd = split_control_frame(wire.data(), wire.size(), op,
                                             payload);
  EXPECT_EQ(fd.status, Status::kUnknownOp);
  EXPECT_EQ(fd.consumed, wire.size());
}

// ---------------------------------------------------------------------------
// Hostile battery: the payload codecs.

TEST(ControlHostile, TruncatedPayloadRejectedAtEveryBoundary) {
  // Chopping the payload at every possible length must yield a typed
  // kBadFrame — never a crash, never a partial decode reported as kOk.
  const std::vector<std::uint8_t> full = encode_epoch_done(sample_done());
  for (std::size_t n = 0; n < full.size(); ++n) {
    EpochDoneMsg out;
    const Status s =
        decode_epoch_done(std::span(full.data(), n), out);
    EXPECT_EQ(s, Status::kBadFrame) << "truncated at " << n;
  }
}

TEST(ControlHostile, SlackPayloadBytesRejected) {
  for (int extra = 1; extra <= 3; ++extra) {
    std::vector<std::uint8_t> payload = encode_mailbox_batch({});
    payload.insert(payload.end(), static_cast<std::size_t>(extra), 0x00);
    MailboxBatchMsg out;
    EXPECT_EQ(decode_mailbox_batch(payload, out), Status::kSlackPayload);
  }
}

TEST(ControlHostile, TailByteAboveOneRejected) {
  std::vector<std::uint8_t> payload = encode_epoch_begin(sample_begin());
  // Layout: varint seq (41 -> 1 byte) then the tail byte.
  ASSERT_EQ(payload[1], 0);
  payload[1] = 2;
  EpochBeginMsg out;
  EXPECT_EQ(decode_epoch_begin(payload, out), Status::kBadFrame);
}

TEST(ControlHostile, HostileGroupCountRejected) {
  // A forged blob-list count far past kMaxGroups (1<<16) must be
  // refused before any allocation is attempted.
  EpochBeginMsg m;
  m.seq = 1;
  std::vector<std::uint8_t> payload = encode_epoch_begin(m);
  // seq(1B) tail(1B) then varint dedup-log count == 0x00: replace with
  // a 5-byte varint claiming ~2^32 groups.
  const std::size_t count_at = 2;
  ASSERT_EQ(payload[count_at], 0);
  payload.erase(payload.begin() + static_cast<std::ptrdiff_t>(count_at));
  const std::uint8_t huge[] = {0xff, 0xff, 0xff, 0xff, 0x0f};
  payload.insert(payload.begin() + static_cast<std::ptrdiff_t>(count_at),
                 huge, huge + sizeof huge);
  EpochBeginMsg out;
  EXPECT_EQ(decode_epoch_begin(payload, out), Status::kBadFrame);
}

TEST(ControlHostile, HostileMailboxLaneRejected) {
  MailboxBatchMsg m;
  m.entries = {{(1u << 16) + 1, 5}};  // lane past kMaxGroups
  const std::vector<std::uint8_t> payload = encode_mailbox_batch(m);
  MailboxBatchMsg out;
  EXPECT_EQ(decode_mailbox_batch(payload, out), Status::kBadFrame);
}

TEST(ControlHostile, EmptyPayloadRejectedForEveryMessage) {
  const std::span<const std::uint8_t> none;
  EpochBeginMsg b;
  EXPECT_EQ(decode_epoch_begin(none, b), Status::kBadFrame);
  MailboxBatchMsg mb;
  EXPECT_EQ(decode_mailbox_batch(none, mb), Status::kBadFrame);
  EpochDoneMsg d;
  EXPECT_EQ(decode_epoch_done(none, d), Status::kBadFrame);
  ChunkMetaMsg c;
  EXPECT_EQ(decode_chunk_meta(none, c), Status::kBadFrame);
  ShutdownMsg s;
  EXPECT_EQ(decode_shutdown(none, s), Status::kBadFrame);
}

TEST(ControlHostile, PipelinedFramesSplitCleanly) {
  // Two frames back-to-back: the splitter must consume exactly one and
  // leave the second intact for the next call (the socket readers rely
  // on `consumed` for resync).
  std::vector<std::uint8_t> wire;
  append_control_frame(wire, ProtoOp::kEpochBegin,
                       encode_epoch_begin(sample_begin()));
  const std::size_t first = wire.size();
  append_control_frame(wire, ProtoOp::kShutdown, encode_shutdown({}));

  ProtoOp op{};
  std::span<const std::uint8_t> payload;
  const FrameDecode a = split_control_frame(wire.data(), wire.size(), op,
                                            payload);
  ASSERT_EQ(a.status, Status::kOk);
  EXPECT_EQ(a.consumed, first);
  EXPECT_EQ(op, ProtoOp::kEpochBegin);

  const FrameDecode b = split_control_frame(wire.data() + a.consumed,
                                            wire.size() - a.consumed, op,
                                            payload);
  ASSERT_EQ(b.status, Status::kOk);
  EXPECT_EQ(op, ProtoOp::kShutdown);
  EXPECT_EQ(a.consumed + b.consumed, wire.size());
}

}  // namespace
}  // namespace u1
