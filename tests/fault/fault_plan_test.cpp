#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "fault/fault_injector.hpp"
#include "fault/scenarios.hpp"

namespace u1 {
namespace {

TEST(FaultPlanParse, DurationsAndKeys) {
  const FaultPlan plan = parse_fault_plan(
      "s3_brownout t=2d12h30m dur=45m error=0.25 slow=4\n"
      "# a comment line\n"
      "process_crash t=90s dur=1h machine=3 slot=2\n"
      "\n"
      "mq_drop rate=0.5 dur=10m drop=0.9  # trailing comment\n");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kS3Brownout);
  EXPECT_EQ(plan.specs[0].at, 2 * kDay + 12 * kHour + 30 * kMinute);
  EXPECT_EQ(plan.specs[0].duration, 45 * kMinute);
  EXPECT_DOUBLE_EQ(plan.specs[0].error_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.specs[0].slow_factor, 4.0);
  EXPECT_EQ(plan.specs[1].at, 90 * kSecond);
  EXPECT_EQ(plan.specs[1].machine, 3u);
  EXPECT_EQ(plan.specs[1].slot, 2u);
  EXPECT_DOUBLE_EQ(plan.specs[2].rate_per_day, 0.5);
  EXPECT_DOUBLE_EQ(plan.specs[2].drop_prob, 0.9);
}

TEST(FaultPlanParse, BareNumbersAreSeconds) {
  const FaultPlan plan = parse_fault_plan("s3_brownout t=30 dur=60\n");
  EXPECT_EQ(plan.specs[0].at, 30 * kSecond);
  EXPECT_EQ(plan.specs[0].duration, kMinute);
}

TEST(FaultPlanParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_fault_plan("martian_attack t=1h dur=1h\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("s3_brownout t=1h\n"),  // missing dur
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("s3_brownout t=1x dur=1h\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("s3_brownout bogus dur=1h\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("s3_brownout wat=3 dur=1h\n"),
               std::invalid_argument);
}

/// EXPECT that `fn` throws std::invalid_argument whose message contains
/// every fragment — hostile plan input must name the offending line.
template <typename Fn>
void expect_throw_containing(Fn&& fn,
                             std::initializer_list<const char*> fragments) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    for (const char* fragment : fragments)
      EXPECT_NE(msg.find(fragment), std::string::npos)
          << "message '" << msg << "' lacks '" << fragment << "'";
  }
}

TEST(FaultPlanParse, DagKeysAndLineNumbers) {
  const FaultPlan plan = parse_fault_plan(
      "machine_outage id=outage t=1d dur=40m machine=2\n"
      "# cause -> effect\n"
      "s3_brownout after=outage on=begin p=0.5 delay=2m dur=30m error=0.2\n"
      "process_crash after=outage on=end dur=15m machine=2 slot=3\n");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].id, "outage");
  EXPECT_EQ(plan.specs[0].line, 1u);
  EXPECT_EQ(plan.specs[1].after, "outage");
  EXPECT_FALSE(plan.specs[1].after_end);
  EXPECT_DOUBLE_EQ(plan.specs[1].trigger_prob, 0.5);
  EXPECT_EQ(plan.specs[1].trigger_delay, 2 * kMinute);
  EXPECT_EQ(plan.specs[1].line, 3u);
  EXPECT_TRUE(plan.specs[2].after_end);
  EXPECT_DOUBLE_EQ(plan.specs[2].trigger_prob, 1.0);  // default
  const std::vector<std::size_t> parents = fault_plan_parents(plan);
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  ASSERT_EQ(parents.size(), 3u);
  EXPECT_EQ(parents[0], npos);
  EXPECT_EQ(parents[1], 0u);
  EXPECT_EQ(parents[2], 0u);
}

TEST(FaultPlanParse, RejectsUnknownAfterIdWithLine) {
  expect_throw_containing(
      [] {
        parse_fault_plan(
            "machine_outage id=outage t=1d dur=40m machine=2\n"
            "s3_brownout after=typo dur=30m error=0.2\n");
      },
      {"fault plan line 2", "unknown id 'typo'"});
}

TEST(FaultPlanParse, RejectsDependencyCycleWithLine) {
  expect_throw_containing(
      [] {
        parse_fault_plan(
            "s3_brownout   id=a after=b dur=30m error=0.2\n"
            "process_crash id=b after=a dur=15m machine=1 slot=0\n");
      },
      {"fault plan line", "dependency cycle"});
  expect_throw_containing(
      [] {
        parse_fault_plan("s3_brownout id=a after=a dur=30m error=0.2\n");
      },
      {"fault plan line 1", "depends on itself"});
}

TEST(FaultPlanParse, RejectsProbabilityOutsideUnitInterval) {
  expect_throw_containing(
      [] {
        parse_fault_plan(
            "machine_outage id=o t=1d dur=40m machine=2\n"
            "s3_brownout after=o p=1.5 dur=30m error=0.2\n");
      },
      {"fault plan line 2", "probability outside [0,1]"});
  expect_throw_containing(
      [] { parse_fault_plan("s3_brownout t=1h dur=30m error=-0.1\n"); },
      {"fault plan line 1", "probability outside [0,1]"});
}

TEST(FaultPlanParse, RejectsDuplicateKeysWithLine) {
  expect_throw_containing(
      [] { parse_fault_plan("s3_brownout t=1h t=2h dur=30m error=0.2\n"); },
      {"fault plan line 1", "duplicate key 't'"});
}

TEST(FaultPlanParse, RejectsRateCombinedWithAfter) {
  expect_throw_containing(
      [] {
        parse_fault_plan(
            "machine_outage id=o t=1d dur=40m machine=2\n"
            "process_crash after=o rate=3 dur=15m\n");
      },
      {"fault plan line 2", "rate= cannot be combined with after="});
}

TEST(FaultPlanParse, RejectsTriggerKeysWithoutAfter) {
  for (const char* bad :
       {"s3_brownout t=1h p=0.5 dur=30m error=0.2\n",
        "s3_brownout t=1h delay=2m dur=30m error=0.2\n",
        "s3_brownout t=1h on=end dur=30m error=0.2\n"}) {
    expect_throw_containing([bad] { parse_fault_plan(bad); },
                            {"fault plan line 1", "requires after="});
  }
}

TEST(FaultPlanParse, RejectsDuplicateIds) {
  expect_throw_containing(
      [] {
        parse_fault_plan(
            "s3_brownout   id=x t=1h dur=30m error=0.2\n"
            "process_crash id=x t=2h dur=15m machine=1 slot=0\n");
      },
      {"fault plan line 2", "duplicate id 'x'"});
}

TEST(FaultPlanParse, ProgrammaticPlanReportsSpecIndex) {
  // A plan assembled in code (line 0) still gets a usable location.
  FaultPlan plan;
  FaultSpec a;
  a.kind = FaultKind::kS3Brownout;
  a.id = "a";
  a.after = "nope";
  a.duration = kMinute;
  plan.specs.push_back(a);
  expect_throw_containing(
      [&] { build_fault_schedule(plan, kDay, 6, 10, 1); },
      {"fault plan spec #1", "unknown id 'nope'"});
}

TEST(FaultSchedule, TriggeredEdgesAnchorOnParentWindow) {
  const FaultPlan plan = parse_fault_plan(
      "machine_outage id=outage t=1h dur=40m machine=2\n"
      "s3_brownout   after=outage on=begin delay=2m dur=30m error=0.2\n"
      "process_crash after=outage on=end delay=5m dur=15m machine=2 "
      "slot=3\n");
  const FaultSchedule sched = build_fault_schedule(plan, kDay, 6, 10, 7);
  ASSERT_EQ(sched.size(), 6u);  // 3 windows x begin+end
  // Window ids follow textual order: outage=0, brownout=1, crash=2.
  SimTime begin[3] = {0, 0, 0};
  for (const FaultEvent& ev : sched)
    if (ev.begin) begin[ev.id] = ev.at;
  EXPECT_EQ(begin[0], kHour);
  EXPECT_EQ(begin[1], kHour + 2 * kMinute);             // on=begin + 2m
  EXPECT_EQ(begin[2], kHour + 40 * kMinute + 5 * kMinute);  // on=end + 5m
}

TEST(FaultSchedule, ChainedEdgesFireTransitively) {
  const FaultPlan plan = parse_fault_plan(
      "process_crash id=r1 t=1h dur=10m machine=1 slot=0\n"
      "process_crash id=r2 after=r1 on=end delay=3m dur=10m machine=2 "
      "slot=0\n"
      "process_crash id=r3 after=r2 on=end delay=3m dur=10m machine=3 "
      "slot=0\n");
  const FaultSchedule sched = build_fault_schedule(plan, kDay, 6, 10, 7);
  ASSERT_EQ(sched.size(), 6u);
  SimTime begin[3] = {0, 0, 0};
  for (const FaultEvent& ev : sched)
    if (ev.begin) begin[ev.id] = ev.at;
  EXPECT_EQ(begin[1], begin[0] + 13 * kMinute);
  EXPECT_EQ(begin[2], begin[1] + 13 * kMinute);
}

TEST(FaultSchedule, ZeroProbabilityEdgeNeverFires) {
  const FaultPlan plan = parse_fault_plan(
      "machine_outage id=o t=1h dur=40m machine=2\n"
      "s3_brownout after=o p=0 dur=30m error=0.2\n");
  const FaultSchedule sched = build_fault_schedule(plan, kDay, 6, 10, 7);
  ASSERT_EQ(sched.size(), 2u);  // parent only
  for (const FaultEvent& ev : sched)
    EXPECT_EQ(ev.kind, FaultKind::kMachineOutage);
}

TEST(FaultSchedule, TriggeredStartPastHorizonIsDropped) {
  const FaultPlan plan = parse_fault_plan(
      "machine_outage id=o t=20h dur=40m machine=2\n"
      "s3_brownout after=o on=end delay=4h dur=30m error=0.2\n");
  // Child would begin at 20h40m + 4h > 24h horizon.
  const FaultSchedule sched = build_fault_schedule(plan, kDay, 6, 10, 7);
  ASSERT_EQ(sched.size(), 2u);
  for (const FaultEvent& ev : sched)
    EXPECT_EQ(ev.kind, FaultKind::kMachineOutage);
}

TEST(FaultSchedule, TuningOneEdgeDoesNotPerturbSiblings) {
  // Per-spec RNG streams: flipping sibling A's p= must not move the
  // events of sibling B or of any Poisson spec.
  const char* kSibling =
      "process_crash rate=4 dur=10m\n"
      "machine_outage id=o t=2h dur=40m machine=2\n"
      "s3_brownout after=o p=%s dur=30m error=0.2\n"
      "mq_drop after=o p=0.5 dur=20m drop=0.5\n";
  char with_a[256], without_a[256];
  std::snprintf(with_a, sizeof with_a, kSibling, "1");
  std::snprintf(without_a, sizeof without_a, kSibling, "0");
  const FaultSchedule a =
      build_fault_schedule(parse_fault_plan(with_a), 7 * kDay, 6, 10, 42);
  const FaultSchedule b =
      build_fault_schedule(parse_fault_plan(without_a), 7 * kDay, 6, 10, 42);
  // Drop s3_brownout events from `a`; everything left must match `b`
  // except window ids (which renumber when a window disappears).
  std::vector<const FaultEvent*> rest;
  for (const FaultEvent& ev : a)
    if (ev.kind != FaultKind::kS3Brownout) rest.push_back(&ev);
  ASSERT_EQ(rest.size(), b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(rest[i]->at, b[i].at);
    EXPECT_EQ(rest[i]->kind, b[i].kind);
    EXPECT_EQ(rest[i]->machine, b[i].machine);
    EXPECT_EQ(rest[i]->begin, b[i].begin);
  }
}

TEST(FaultSchedule, PairsBeginAndEndSorted) {
  const FaultPlan plan = parse_fault_plan(
      "s3_brownout t=1h dur=30m error=0.5\n"
      "machine_outage t=2h dur=15m machine=1\n");
  const FaultSchedule sched = build_fault_schedule(plan, kDay, 6, 10, 7);
  ASSERT_EQ(sched.size(), 4u);
  EXPECT_TRUE(std::is_sorted(sched.begin(), sched.end(),
                             [](const FaultEvent& a, const FaultEvent& b) {
                               return a.at < b.at;
                             }));
  // Every id appears exactly twice: one begin, one end, end = begin + dur.
  std::set<std::size_t> ids;
  for (const FaultEvent& ev : sched) ids.insert(ev.id);
  for (const std::size_t id : ids) {
    const auto begin = std::find_if(sched.begin(), sched.end(),
                                    [&](const FaultEvent& e) {
                                      return e.id == id && e.begin;
                                    });
    const auto end = std::find_if(sched.begin(), sched.end(),
                                  [&](const FaultEvent& e) {
                                    return e.id == id && !e.begin;
                                  });
    ASSERT_NE(begin, sched.end());
    ASSERT_NE(end, sched.end());
    EXPECT_EQ(end->at, begin->at + begin->duration);
  }
}

TEST(FaultSchedule, DeterministicAndSeedSensitive) {
  const FaultPlan plan =
      parse_fault_plan("process_crash rate=3 dur=1h\n");  // drawn arrivals
  const FaultSchedule a = build_fault_schedule(plan, 7 * kDay, 6, 10, 42);
  const FaultSchedule b = build_fault_schedule(plan, 7 * kDay, 6, 10, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].machine, b[i].machine);
    EXPECT_EQ(a[i].begin, b[i].begin);
  }
  const FaultSchedule c = build_fault_schedule(plan, 7 * kDay, 6, 10, 43);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].at != c[i].at || a[i].machine != c[i].machine;
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, DrawnTargetsStayInRange) {
  const FaultPlan plan = parse_fault_plan(
      "machine_outage rate=5 dur=10m\n"
      "shard_failover rate=5 dur=10m reject=0.3\n");
  const FaultSchedule sched = build_fault_schedule(plan, 7 * kDay, 6, 10, 9);
  ASSERT_FALSE(sched.empty());
  for (const FaultEvent& ev : sched) {
    if (ev.kind == FaultKind::kMachineOutage) {
      EXPECT_GE(ev.machine, 1u);
      EXPECT_LE(ev.machine, 6u);
    } else {
      EXPECT_GE(ev.shard, 1u);
      EXPECT_LE(ev.shard, 10u);
    }
  }
}

TEST(FaultSchedule, StandardPlanCoversAcceptanceKinds) {
  const FaultPlan plan = standard_fault_plan();
  const FaultSchedule sched =
      build_fault_schedule(plan, 7 * kDay, 6, 10, 123);
  std::set<FaultKind> kinds;
  for (const FaultEvent& ev : sched)
    if (ev.begin) kinds.insert(ev.kind);
  EXPECT_TRUE(kinds.count(FaultKind::kProcessCrash));
  EXPECT_TRUE(kinds.count(FaultKind::kShardFailover));
  EXPECT_TRUE(kinds.count(FaultKind::kS3Brownout));
  EXPECT_TRUE(kinds.count(FaultKind::kMachineOutage));
  EXPECT_TRUE(kinds.count(FaultKind::kMqDrop));
  EXPECT_TRUE(kinds.count(FaultKind::kAuthBrownout));
  // Everything lands inside the 7-day acceptance horizon.
  for (const FaultEvent& ev : sched) EXPECT_LT(ev.at, 7 * kDay);
}

TEST(IncidentScenarios, RegistryParsesAndSchedules) {
  const auto& all = incident_scenarios();
  ASSERT_EQ(all.size(), 4u);
  std::set<std::string> names;
  for (const IncidentScenario& sc : all) {
    names.insert(std::string(sc.name));
    EXPECT_FALSE(sc.title.empty());
    EXPECT_FALSE(sc.narrative.empty());
    // Plan text parses, schedules inside the 3-day reference horizon,
    // and every window closes before it so recovery is observable.
    const FaultPlan plan = incident_plan(sc.name);
    EXPECT_FALSE(plan.specs.empty());
    const FaultSchedule sched = build_fault_schedule(plan, 3 * kDay, 6, 10, 7);
    EXPECT_FALSE(sched.empty());
    for (const FaultEvent& ev : sched) EXPECT_LT(ev.at, 3 * kDay);
    // Bands are populated (the chaos gate has something to enforce).
    EXPECT_GT(sc.band.min_availability, 0.0);
    EXPECT_GT(sc.band.max_retry_amplification, 1.0);
    EXPECT_GT(sc.band.max_time_to_recover_s, 0.0);
  }
  EXPECT_TRUE(names.count("regional_outage_failback"));
  EXPECT_TRUE(names.count("retry_storm"));
  EXPECT_TRUE(names.count("cache_stampede"));
  EXPECT_TRUE(names.count("rolling_restart"));
}

TEST(IncidentScenarios, ScenariosUseDependencyEdges) {
  // The point of the library: every scenario is a cause->effect DAG,
  // not a bag of independent windows.
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  for (const IncidentScenario& sc : incident_scenarios()) {
    const FaultPlan plan = incident_plan(sc.name);
    const std::vector<std::size_t> parents = fault_plan_parents(plan);
    EXPECT_TRUE(std::any_of(parents.begin(), parents.end(),
                            [](std::size_t p) { return p != npos; }))
        << std::string(sc.name);
  }
}

TEST(IncidentScenarios, UnknownNameListsKnownOnes) {
  EXPECT_EQ(find_incident_scenario("nope"), nullptr);
  try {
    incident_plan("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("retry_storm"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rolling_restart"), std::string::npos) << msg;
  }
}

TEST(FaultLabel, EncodesKindIdPhase) {
  FaultEvent ev;
  ev.id = 2;
  ev.kind = FaultKind::kS3Brownout;
  ev.begin = true;
  EXPECT_EQ(fault_label(ev), "s3_brownout#2:begin");
  ev.begin = false;
  EXPECT_EQ(fault_label(ev), "s3_brownout#2:end");
}

TEST(FaultInjectorWindows, LookupsGateOnTimeAndTarget) {
  const FaultPlan plan = parse_fault_plan(
      "s3_brownout    t=1h dur=1h error=0.5 slow=4\n"
      "shard_failover t=3h dur=1h shard=2 slow=6 reject=1.0\n"
      "auth_brownout  t=5h dur=1h error=1.0\n"
      "mq_drop        t=7h dur=1h drop=1.0\n");
  const FaultSchedule sched = build_fault_schedule(plan, kDay, 6, 10, 1);
  FaultInjector inj(sched, 99);

  // Outside every window: base rates, and the draws consume no RNG (the
  // draw helpers must return false without touching the stream).
  EXPECT_DOUBLE_EQ(inj.s3_error_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(inj.s3_latency_multiplier(0), 1.0);
  EXPECT_DOUBLE_EQ(inj.shard_service_multiplier(2, 0), 1.0);
  EXPECT_FALSE(inj.s3_request_fails(0));
  EXPECT_FALSE(inj.auth_brownout_fails(0));
  EXPECT_FALSE(inj.mq_drops(0));
  EXPECT_FALSE(inj.shard_write_rejected(2, 0));

  // Inside the S3 brownout.
  EXPECT_DOUBLE_EQ(inj.s3_error_rate(90 * kMinute), 0.5);
  EXPECT_DOUBLE_EQ(inj.s3_latency_multiplier(90 * kMinute), 4.0);
  // Inside the failover: only shard 2 is degraded, and with reject=1.0
  // every write there is rejected.
  EXPECT_DOUBLE_EQ(inj.shard_service_multiplier(2, 3 * kHour + kMinute),
                   6.0);
  EXPECT_DOUBLE_EQ(inj.shard_service_multiplier(3, 3 * kHour + kMinute),
                   1.0);
  EXPECT_TRUE(inj.shard_write_rejected(2, 3 * kHour + kMinute));
  EXPECT_FALSE(inj.shard_write_rejected(3, 3 * kHour + kMinute));
  // Deterministic certainties in the auth/mq windows.
  EXPECT_TRUE(inj.auth_brownout_fails(5 * kHour + kMinute));
  EXPECT_TRUE(inj.mq_drops(7 * kHour + kMinute));
  // Windows close.
  EXPECT_DOUBLE_EQ(inj.s3_error_rate(2 * kHour + kMinute), 0.0);
  EXPECT_FALSE(inj.shard_write_rejected(2, 4 * kHour + kMinute));
}

}  // namespace
}  // namespace u1
