#include "analysis/volumes.hpp"

#include "stats/correlation.hpp"

namespace u1 {

VolumeContentStats analyze_volume_contents(
    const std::vector<const MetadataStore*>& stores) {
  VolumeContentStats stats;
  std::size_t with_file = 0, with_dir = 0, heavy = 0, total = 0;
  std::vector<double> files, dirs;
  for (const MetadataStore* store : stores) {
    for (std::size_t s = 1; s <= store->shard_count(); ++s) {
      const Shard& shard = store->shard(ShardId{s});
      for (const auto& [vid, vol] : shard.volumes_map()) {
        const auto [f, d] = shard.count_nodes(vid);
        stats.files_dirs.emplace_back(static_cast<double>(f),
                                      static_cast<double>(d));
        files.push_back(static_cast<double>(f));
        dirs.push_back(static_cast<double>(d));
        ++total;
        if (f > 0) ++with_file;
        if (d > 0) ++with_dir;
        if (f > 1000) ++heavy;
      }
    }
  }
  if (total > 0) {
    stats.volumes_with_file_share =
        static_cast<double>(with_file) / static_cast<double>(total);
    stats.volumes_with_dir_share =
        static_cast<double>(with_dir) / static_cast<double>(total);
    stats.volumes_over_1000_files =
        static_cast<double>(heavy) / static_cast<double>(total);
  }
  if (files.size() >= 2) stats.pearson_files_dirs = pearson(files, dirs);
  return stats;
}

VolumeContentStats analyze_volume_contents(const MetadataStore& store) {
  return analyze_volume_contents(std::vector<const MetadataStore*>{&store});
}

VolumeOwnershipStats analyze_volume_ownership(
    const std::vector<const MetadataStore*>& stores, std::uint64_t users) {
  VolumeOwnershipStats stats;
  std::size_t with_udf = 0, with_share = 0;
  for (std::uint64_t u = 1; u <= users; ++u) {
    const UserId user{u};
    std::size_t udfs = 0, shares = 0;
    bool found = false;
    for (const MetadataStore* store : stores) {
      if (!store->has_user(user)) continue;
      found = true;
      const Shard& shard = store->shard(store->shard_of(user));
      for (const Volume& vol : shard.list_volumes(user)) {
        if (vol.kind == VolumeKind::kUdf) ++udfs;
      }
      shares += shard.share_grants(user).size();
    }
    if (!found) continue;
    stats.udfs_per_user.push_back(static_cast<double>(udfs));
    stats.shares_per_user.push_back(static_cast<double>(shares));
    if (udfs > 0) ++with_udf;
    if (shares > 0) ++with_share;
  }
  const double n = static_cast<double>(stats.udfs_per_user.size());
  if (n > 0) {
    stats.users_with_udf = static_cast<double>(with_udf) / n;
    stats.users_with_share = static_cast<double>(with_share) / n;
  }
  return stats;
}

VolumeOwnershipStats analyze_volume_ownership(const MetadataStore& store,
                                              std::uint64_t users) {
  return analyze_volume_ownership(std::vector<const MetadataStore*>{&store},
                                  users);
}

}  // namespace u1
