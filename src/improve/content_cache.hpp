// Server-side content cache (paper §5.2/§9): RAR inter-arrival times are
// short and reads-per-file are long-tailed, so a Memcached-style cache in
// front of Amazon S3 absorbs a large share of GETs. Byte-capacity LRU
// keyed by content hash.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "proto/ids.hpp"

namespace u1 {

class ContentCache {
 public:
  explicit ContentCache(std::uint64_t capacity_bytes);

  /// Records an access; returns true on a hit. A miss inserts the entry
  /// (read-through) and evicts LRU entries past capacity. Objects larger
  /// than the whole cache are never admitted.
  bool access(const ContentId& id, std::uint64_t size_bytes);

  /// Drops an entry (content deleted or updated).
  void invalidate(const ContentId& id);

  std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  std::uint64_t used_bytes() const noexcept { return used_; }
  std::size_t entries() const noexcept { return map_.size(); }
  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t hit_bytes() const noexcept { return hit_bytes_; }
  double hit_rate() const noexcept;

 private:
  struct Entry {
    ContentId id;
    std::uint64_t size;
  };

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<ContentId, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t hit_bytes_ = 0;
};

}  // namespace u1
