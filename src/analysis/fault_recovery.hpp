// Fault & recovery analysis: consumes the trace of a fault-injected run
// and reports the availability picture an operator would pull from the
// incident log — overall success rate, retry amplification on uploads,
// session drops / load-shed connects, and per-fault-window failure counts
// plus time-to-recover (first successful storage op after the window).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/sink.hpp"

namespace u1 {

/// One fault window reconstructed from the kFault begin/end records.
struct FaultWindowStats {
  std::string label;  // "s3_brownout#2" (kind + schedule window id)
  SimTime begin = 0;
  SimTime end = 0;        // 0 while the :end edge has not been seen
  std::uint64_t failed_ops_during = 0;  // failed storage_done in [begin,end]
  /// Gap from the window's end to the first successful storage_done at or
  /// after it; -1 when the trace ends before service recovered.
  SimTime time_to_recover = -1;
};

class FaultRecoveryAnalyzer final : public TraceSink {
 public:
  void append(const TraceRecord& record) override;

  /// 1 - failed/total over storage_done records at t >= 0.
  double availability() const;
  /// PutContent attempts per successful PutContent (1.0 = no retries).
  double retry_amplification() const;

  std::uint64_t storage_ops() const noexcept { return done_total_; }
  std::uint64_t failed_ops() const noexcept { return done_failed_; }
  std::uint64_t sessions_dropped() const noexcept { return dropped_; }
  std::uint64_t shed_connects() const noexcept { return shed_; }
  std::uint64_t auth_failures() const noexcept { return auth_failures_; }
  std::uint64_t fault_edges() const noexcept { return fault_edges_; }

  const std::vector<FaultWindowStats>& windows() const noexcept {
    return windows_;
  }

 private:
  std::uint64_t done_total_ = 0;
  std::uint64_t done_failed_ = 0;
  std::uint64_t put_attempts_ = 0;
  std::uint64_t put_successes_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t auth_failures_ = 0;
  std::uint64_t fault_edges_ = 0;
  std::vector<FaultWindowStats> windows_;
};

}  // namespace u1
