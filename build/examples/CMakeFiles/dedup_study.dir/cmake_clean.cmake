file(REMOVE_RECURSE
  "CMakeFiles/dedup_study.dir/dedup_study.cpp.o"
  "CMakeFiles/dedup_study.dir/dedup_study.cpp.o.d"
  "dedup_study"
  "dedup_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
