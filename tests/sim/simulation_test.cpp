#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "sim/event_queue.hpp"

namespace u1 {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue<int> q;
  q.push(30, 3);
  q.push(10, 1);
  q.push(20, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoTieBreak) {
  EventQueue<int> q;
  q.push(5, 1);
  q.push(5, 2);
  q.push(5, 3);
  EXPECT_EQ(q.pop().payload, 1);
  EXPECT_EQ(q.pop().payload, 2);
  EXPECT_EQ(q.pop().payload, 3);
}

TEST(EventQueue, NextTimePeeks) {
  EventQueue<int> q;
  q.push(42, 0);
  EXPECT_EQ(q.next_time(), 42);
  EXPECT_EQ(q.size(), 1u);
}

SimulationConfig small_config() {
  SimulationConfig cfg;
  cfg.users = 120;
  cfg.days = 2;
  cfg.seed = 7;
  cfg.enable_ddos = false;
  cfg.bootstrap_files_mean = 4.0;
  return cfg;
}

TEST(Simulation, SmallRunProducesActivity) {
  InMemorySink sink;
  Simulation sim(small_config(), sink);
  const SimulationReport report = sim.run();
  EXPECT_EQ(report.users, 120u);
  EXPECT_GT(report.agent_wakeups, 100u);
  EXPECT_GT(report.backend.sessions_opened, 50u);
  EXPECT_GT(report.backend.rpcs, 100u);
  EXPECT_FALSE(sink.records().empty());
}

TEST(Simulation, DeterministicGivenSeed) {
  CountingSink a, b;
  {
    Simulation sim(small_config(), a);
    sim.run();
  }
  {
    Simulation sim(small_config(), b);
    sim.run();
  }
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.count(RecordType::kRpc), b.count(RecordType::kRpc));
  EXPECT_EQ(a.count(RecordType::kSession), b.count(RecordType::kSession));
}

TEST(Simulation, DifferentSeedsDiffer) {
  CountingSink a, b;
  {
    Simulation sim(small_config(), a);
    sim.run();
  }
  {
    SimulationConfig cfg = small_config();
    cfg.seed = 8;
    Simulation sim(cfg, b);
    sim.run();
  }
  EXPECT_NE(a.total(), b.total());
}

TEST(Simulation, RecordsStayWithinWindowExceptBootstrap) {
  InMemorySink sink;
  SimulationConfig cfg = small_config();
  Simulation sim(cfg, sink);
  sim.run();
  const SimTime horizon = cfg.days * kDay;
  for (const auto& r : sink.records()) {
    EXPECT_GE(r.t, -5 * kDay);  // bootstrap occupies [-4d, -2d]
    // Close records of sessions ending after the horizon are permitted to
    // exceed it slightly; transfers are bounded too.
    EXPECT_LE(r.t, horizon + 5 * kDay);
  }
}

TEST(Simulation, StoragePairsBalance) {
  CountingSink counts;
  Simulation sim(small_config(), counts);
  sim.run();
  EXPECT_EQ(counts.count(RecordType::kStorage),
            counts.count(RecordType::kStorageDone));
}

TEST(Simulation, RunTwiceThrows) {
  NullSink sink;
  Simulation sim(small_config(), sink);
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(Simulation, ValidatesConfig) {
  NullSink sink;
  SimulationConfig cfg = small_config();
  cfg.users = 0;
  EXPECT_THROW(Simulation(cfg, sink), std::invalid_argument);
  cfg = small_config();
  cfg.days = 0;
  EXPECT_THROW(Simulation(cfg, sink), std::invalid_argument);
}

TEST(Simulation, DdosInjectionSpikessSessions) {
  // Run two 6-day sims around the Jan-15/16 attacks: with and without.
  SimulationConfig base;
  base.users = 150;
  base.days = 6;
  base.seed = 99;
  base.bootstrap_files_mean = 2.0;
  base.enable_ddos = false;

  CountingSink quiet;
  {
    Simulation sim(base, quiet);
    sim.run();
  }
  SimulationConfig attacked = base;
  attacked.enable_ddos = true;
  // The bot fleet auto-scales with population (150/10000); compensate so
  // this small simulation still sees a visible attack.
  attacked.ddos_bot_scale = 60.0;
  CountingSink noisy;
  std::uint64_t attacks = 0;
  {
    Simulation sim(attacked, noisy);
    attacks = sim.run().ddos_attacks;
  }
  EXPECT_EQ(attacks, 2u);  // Jan 15 + Jan 16 fall inside 6 days
  EXPECT_GT(noisy.count(RecordType::kSession),
            quiet.count(RecordType::kSession) * 3 / 2);
}

TEST(Simulation, DedupRatioInPlausibleRange) {
  InMemorySink sink;
  SimulationConfig cfg = small_config();
  cfg.users = 300;
  cfg.bootstrap_files_mean = 8.0;
  Simulation sim(cfg, sink);
  sim.run();
  const double dr = sim.backend().store().contents().dedup_ratio();
  EXPECT_GT(dr, 0.05);
  EXPECT_LT(dr, 0.4);
}

TEST(Simulation, SessionsMostlyCold) {
  // Count active sessions (sessions with at least one storage op between
  // open and close) vs all sessions — the paper reports 5.57% active.
  InMemorySink sink;
  SimulationConfig cfg = small_config();
  cfg.users = 400;
  cfg.days = 3;
  Simulation sim(cfg, sink);
  sim.run();
  std::unordered_map<std::uint64_t, bool> active;
  std::uint64_t sessions = 0;
  for (const auto& r : sink.records()) {
    if (r.t < 0) continue;  // skip bootstrap
    if (r.type == RecordType::kSession &&
        r.session_event == SessionEvent::kOpen) {
      ++sessions;
      active[r.session.value] = false;
    } else if (r.type == RecordType::kStorage &&
               is_storage_op(r.api_op)) {
      const auto it = active.find(r.session.value);
      if (it != active.end()) it->second = true;
    }
  }
  ASSERT_GT(sessions, 100u);
  std::uint64_t active_count = 0;
  for (const auto& [sid, was_active] : active)
    if (was_active) ++active_count;
  const double frac = static_cast<double>(active_count) / sessions;
  EXPECT_GT(frac, 0.005);
  EXPECT_LT(frac, 0.25);
}

}  // namespace
}  // namespace u1
