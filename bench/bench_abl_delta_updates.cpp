// Ablation (§9 "optimizing storage matters"): U1's desktop client lacked
// delta updates, making file updates 18.5% of upload traffic. This bench
// re-runs the same month with a delta-capable client and reports the
// wire-traffic saving.
#include "analysis/traffic.hpp"
#include "bench/bench_util.hpp"
#include "util/strings.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const std::size_t users = env_users(5000);
  const int days = env_days(14);

  auto run_variant = [&](bool delta) {
    auto cfg = standard_config(users, days, /*ddos=*/false);
    cfg.backend.enable_delta_updates = delta;
    TrafficAnalyzer traffic(0, cfg.days * kDay);
    auto sim = run_into(traffic, cfg);
    struct Result {
      double update_traffic_frac;
      double wire_bytes;
    };
    // Window-scoped wire bytes (the pre-trace bootstrap has no updates
    // and would dilute the comparison).
    return Result{traffic.update_traffic_fraction(),
                  static_cast<double>(traffic.upload_wire_bytes())};
  };

  const auto baseline = run_variant(false);
  const auto delta = run_variant(true);

  header("Ablation", "Delta updates (absent in U1) vs full-file updates");
  row("update share of upload traffic (U1)", 0.185,
      baseline.update_traffic_frac);
  row("update share with delta updates", 0.03, delta.update_traffic_frac);
  std::printf("  upload wire traffic:  full-file=%s   delta=%s\n",
              format_bytes(baseline.wire_bytes).c_str(),
              format_bytes(delta.wire_bytes).c_str());
  row("wire traffic saved by delta updates", 0.157,
      1.0 - delta.wire_bytes / baseline.wire_bytes);
  note("paper: the lack of delta updates is a major inefficiency; "
       "metadata-only edits (e.g. mp3 tags) re-upload whole files");
  return 0;
}
