// Symbol interning for trace records. The two string-valued trace columns
// (`ext`, `fault`) draw from tiny vocabularies — a few dozen file
// extensions from the workload catalog and one label pair per fault
// window — yet as std::string members they made every TraceRecord an
// allocation-carrying ~200-byte object that the chunk sort, k-way merge,
// guard scan and sink write copied 9M times per 30-day run. Interning
// turns the record into a fixed-size trivially-copyable struct; strings
// are resolved back only at the CSV/logfile serialization boundary, so
// the emitted bytes (and the trace SHA-1) are unchanged.
//
// Two layers:
//
//  - SymbolTable: the process-global id<->string store. Append-only,
//    mutex-guarded interning; resolution is lock-free and safe
//    concurrently with interning because storage is chunked and
//    pointer-stable (a published id's string never moves, and distinct
//    table slots never alias). Symbol 0 is the empty string.
//
//  - GroupSymbols: the per-backend front end. In eager mode (sequential
//    engine, tests) it interns straight into the global table and hands
//    out global ids. In deferred mode (one instance per shard group of
//    the parallel engine) it assigns dense group-local ids with no
//    locking at all on the emit hot path; at each epoch barrier the
//    engine publishes every group's new symbols into the global table in
//    group-index order — a deterministic merge, so the local->global
//    mapping (and the resolved trace) is identical for every worker
//    thread count — and the flusher rewrites record labels through a
//    snapshot of that mapping before any consumer sees them.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace u1 {

/// Interned string id. 0 is always the empty string.
using Symbol = std::uint32_t;
inline constexpr Symbol kEmptySymbol = 0;

namespace detail {
/// Heterogeneous lookup so intern(string_view) never builds a temporary
/// std::string just to probe the map.
struct SymbolHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
struct SymbolEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};
}  // namespace detail

class SymbolTable {
 public:
  SymbolTable();

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `text`, interning it on first sight. Thread-safe
  /// (mutex); meant for serial contexts — barrier publication, sequential
  /// emit misses, CSV parsing — never a parallel hot loop.
  Symbol intern(std::string_view text);

  /// The string for a published id. Lock-free; safe concurrently with
  /// intern() for any id obtained before the call (chunked storage never
  /// moves a published string).
  std::string_view resolve(Symbol symbol) const noexcept;

  /// Number of distinct symbols (including the empty string).
  std::size_t size() const;

 private:
  // 4096 strings per chunk; the chunk directory is pre-sized so it never
  // reallocates (pointer-stability is what makes resolve lock-free).
  static constexpr std::size_t kChunkShift = 12;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 14;
  using Chunk = std::array<std::string, kChunkSize>;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Symbol, detail::SymbolHash,
                     detail::SymbolEq>
      index_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t count_ = 0;
};

/// The process-wide table every TraceRecord label ultimately resolves
/// through. A singleton on purpose: records are POD and cannot carry a
/// table pointer, and analyzers/serializers must agree on the id space.
SymbolTable& global_symbols();

class GroupSymbols {
 public:
  explicit GroupSymbols(SymbolTable* table = &global_symbols())
      : global_(table) {
    map_.push_back(kEmptySymbol);  // local 0 == global 0 == ""
  }

  /// Deferred mode: intern() assigns group-local ids (lock-free); the
  /// engine must publish() at every barrier and remap record labels via
  /// mapping(). Switch before any record is emitted.
  void set_deferred(bool deferred) noexcept { deferred_ = deferred; }
  bool deferred() const noexcept { return deferred_; }

  /// Id for `text` — global in eager mode, group-local in deferred mode.
  Symbol intern(std::string_view text) {
    if (text.empty()) return kEmptySymbol;
    const auto it = cache_.find(text);
    if (it != cache_.end()) return it->second;
    Symbol sym;
    if (deferred_) {
      locals_.emplace_back(text);
      sym = static_cast<Symbol>(locals_.size());  // locals are 1-based
    } else {
      sym = global_->intern(text);
    }
    cache_.emplace(std::string(text), sym);
    return sym;
  }

  /// Deferred mode: merges symbols interned since the last call into the
  /// global table and extends the local->global mapping. Call serially,
  /// in group-index order, at every epoch barrier — that fixed order is
  /// what makes the global id assignment thread-count-invariant.
  void publish() {
    for (std::size_t i = map_.size() - 1; i < locals_.size(); ++i)
      map_.push_back(global_->intern(locals_[i]));
  }

  /// local id -> global id, valid for every symbol interned before the
  /// last publish(). The flusher copies this into its slot so stage-A
  /// remapping never races the next epoch's interning.
  const std::vector<Symbol>& mapping() const noexcept { return map_; }

 private:
  SymbolTable* global_;
  bool deferred_ = false;
  std::unordered_map<std::string, Symbol, detail::SymbolHash,
                     detail::SymbolEq>
      cache_;
  std::vector<std::string> locals_;  // locals_[i] has local id i+1
  std::vector<Symbol> map_;          // map_[local] == global
};

/// Dense per-logfile dictionary for the binary trace format
/// (trace/binlog.hpp): assigns file-local ids (1-based; 0 stays the
/// empty string) to global symbols in first-use order, so each `.u1b`
/// symbol sidecar lists exactly the strings that one logfile references
/// — the global table's id space never leaks to disk.
class SymbolDict {
 public:
  /// File-local id for a global symbol, assigning the next dense id on
  /// first sight.
  std::uint32_t local_id(Symbol global) {
    if (global == kEmptySymbol) return 0;
    const auto [it, fresh] = to_local_.try_emplace(
        global, static_cast<std::uint32_t>(globals_.size() + 1));
    if (fresh) globals_.push_back(global);
    return it->second;
  }
  /// Global ids in local-id order: globals()[i] has local id i+1.
  const std::vector<Symbol>& globals() const noexcept { return globals_; }
  std::size_t size() const noexcept { return globals_.size(); }

 private:
  std::unordered_map<Symbol, std::uint32_t> to_local_;
  std::vector<Symbol> globals_;
};

}  // namespace u1
