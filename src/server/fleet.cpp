#include "server/fleet.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace u1 {

ServerFleet::ServerFleet(const FleetConfig& config, std::uint64_t seed)
    : machines_(config.machines), slow_start_(config.slow_start),
      rng_(seed) {
  if (config.machines == 0 || config.processes_per_machine == 0)
    throw std::invalid_argument("ServerFleet: zero machines or processes");
  if (config.slow_start < 0)
    throw std::invalid_argument("ServerFleet: negative slow_start");
  machine_processes_.resize(machines_);
  open_sessions_.assign(machines_, 0);
  dead_on_machine_.assign(machines_, 0);
  const std::size_t total = machines_ * config.processes_per_machine;
  process_machine_.reserve(total);
  proc_sessions_.assign(total, 0);
  dead_.assign(total, 0);
  ramp_start_.assign(total, kNoRamp);
  for (std::size_t p = 0; p < total; ++p) {
    const MachineId m{p % machines_ + 1};
    process_machine_.push_back(m);
    machine_processes_[m.value - 1].push_back(ProcessId{p + 1});
  }
}

void ServerFleet::check_machine(MachineId machine, const char* what) const {
  if (machine.value == 0 || machine.value > machines_)
    throw std::out_of_range(what);
}

void ServerFleet::check_process(ProcessId process, const char* what) const {
  if (process.value == 0 || process.value > process_machine_.size())
    throw std::out_of_range(what);
}

MachineId ServerFleet::machine_of(ProcessId process) const {
  check_process(process, "ServerFleet::machine_of: bad process");
  return process_machine_[process.value - 1];
}

double ServerFleet::ramp_fraction_at(std::size_t index, SimTime now) const {
  if (slow_start_ == 0 || ramp_start_[index] == kNoRamp) return 1.0;
  if (now <= ramp_start_[index]) return 0.0;
  const SimTime elapsed = now - ramp_start_[index];
  if (elapsed >= slow_start_) return 1.0;
  return static_cast<double>(elapsed) / static_cast<double>(slow_start_);
}

void ServerFleet::expire_ramps(SimTime now) {
  for (std::size_t p = 0; p < ramp_start_.size() && ramping_ > 0; ++p) {
    if (ramp_start_[p] == kNoRamp) continue;
    if (now - ramp_start_[p] >= slow_start_) {
      ramp_start_[p] = kNoRamp;
      --ramping_;
    }
  }
}

std::optional<ServerFleet::Placement> ServerFleet::place_session(
    std::uint64_t per_process_cap, SimTime now) {
  if (slow_start_ != 0 && ramping_ != 0) expire_ramps(now);
  // Least-loaded machine wins; ties broken by lowest index (HAProxy
  // leastconn behavior). Machines with nothing alive are skipped; if the
  // chosen machine has no process with capacity, fall through to the
  // next-least-loaded one.
  //
  // While slow-start ramps are active, "load" means effective load: real
  // open sessions plus a phantom share for each ramping process that
  // decays linearly to zero over the ramp window. The phantom share is
  // the current fleet-average sessions per live process — what the
  // process would be carrying had it never died — so a restored machine
  // converges to parity instead of being flooded back to it.
  const bool ramped = ramping_ != 0;
  double avg_per_proc = 0;
  if (ramped) {
    std::size_t dead_total = 0;
    for (const std::size_t d : dead_on_machine_) dead_total += d;
    const std::size_t live = process_machine_.size() - dead_total;
    if (live > 0)
      avg_per_proc =
          static_cast<double>(total_open_sessions()) / static_cast<double>(live);
  }
  std::vector<char> tried(machines_, 0);
  for (std::size_t round = 0; round < machines_; ++round) {
    std::size_t best = machines_;
    double best_load = 0;
    for (std::size_t m = 0; m < machines_; ++m) {
      if (tried[m]) continue;
      if (machine_processes_[m].size() == dead_on_machine_[m]) continue;
      double load = static_cast<double>(open_sessions_[m]);
      if (ramped) {
        for (const ProcessId p : machine_processes_[m]) {
          const std::size_t i = p.value - 1;
          if (dead_[i] || ramp_start_[i] == kNoRamp) continue;
          load += (1.0 - ramp_fraction_at(i, now)) * avg_per_proc;
        }
      }
      if (best == machines_ || load < best_load) {
        best = m;
        best_load = load;
      }
    }
    if (best == machines_) return std::nullopt;
    tried[best] = 1;
    const auto& procs = machine_processes_[best];
    // Healthy fast path: identical draw sequence to the fault-free fleet.
    if (dead_on_machine_[best] == 0 && per_process_cap == 0 && !ramped) {
      const ProcessId proc = procs[rng_.below(procs.size())];
      ++open_sessions_[best];
      ++proc_sessions_[proc.value - 1];
      return Placement{MachineId{best + 1}, proc};
    }
    std::vector<ProcessId> candidates;
    candidates.reserve(procs.size());
    for (const ProcessId p : procs) {
      const std::size_t i = p.value - 1;
      if (dead_[i]) continue;
      if (per_process_cap != 0 && proc_sessions_[i] >= per_process_cap)
        continue;
      if (ramped && ramp_start_[i] != kNoRamp) {
        // Ramped admission: a fresh process takes at most a ramp-scaled
        // slice of its target load (the cap, or the fleet average when
        // uncapped), but never refuses the very first session.
        const double target = per_process_cap != 0
                                  ? static_cast<double>(per_process_cap)
                                  : avg_per_proc;
        const auto cap = static_cast<std::uint64_t>(
            std::max(1.0, ramp_fraction_at(i, now) * target));
        if (proc_sessions_[i] >= cap) continue;
      }
      candidates.push_back(p);
    }
    if (candidates.empty()) continue;
    const ProcessId proc = candidates[rng_.below(candidates.size())];
    ++open_sessions_[best];
    ++proc_sessions_[proc.value - 1];
    return Placement{MachineId{best + 1}, proc};
  }
  return std::nullopt;
}

ServerFleet::Placement ServerFleet::place_session() {
  auto placed = place_session(0);
  if (!placed)
    throw std::logic_error("ServerFleet::place_session: whole fleet down");
  return *placed;
}

bool ServerFleet::end_session(MachineId machine, ProcessId process) {
  check_machine(machine, "ServerFleet::end_session: bad machine");
  check_process(process, "ServerFleet::end_session: bad process");
  auto& count = open_sessions_[machine.value - 1];
  auto& pcount = proc_sessions_[process.value - 1];
  if (pcount > 0) --pcount;
  if (count == 0) return false;
  --count;
  return true;
}

void ServerFleet::kill_process(ProcessId process) {
  check_process(process, "ServerFleet::kill_process: bad process");
  const std::size_t i = process.value - 1;
  auto& dead = dead_[i];
  if (dead) return;
  dead = 1;
  ++dead_on_machine_[process_machine_[i].value - 1];
  // A dying process forfeits its ramp; the respawn starts a fresh one.
  if (ramp_start_[i] != kNoRamp) {
    ramp_start_[i] = kNoRamp;
    --ramping_;
  }
}

void ServerFleet::respawn_process(ProcessId process, SimTime now) {
  check_process(process, "ServerFleet::respawn_process: bad process");
  const std::size_t i = process.value - 1;
  auto& dead = dead_[i];
  if (!dead) return;
  dead = 0;
  --dead_on_machine_[process_machine_[i].value - 1];
  if (slow_start_ != 0) {
    if (ramp_start_[i] == kNoRamp) ++ramping_;
    ramp_start_[i] = now;
  }
}

void ServerFleet::kill_machine(MachineId machine) {
  check_machine(machine, "ServerFleet::kill_machine: bad machine");
  for (const ProcessId p : machine_processes_[machine.value - 1])
    kill_process(p);
}

void ServerFleet::restore_machine(MachineId machine, SimTime now) {
  check_machine(machine, "ServerFleet::restore_machine: bad machine");
  for (const ProcessId p : machine_processes_[machine.value - 1])
    respawn_process(p, now);
}

double ServerFleet::ramp_fraction(ProcessId process, SimTime now) const {
  check_process(process, "ServerFleet::ramp_fraction: bad process");
  return ramp_fraction_at(process.value - 1, now);
}

bool ServerFleet::in_slow_start(ProcessId process, SimTime now) const {
  check_process(process, "ServerFleet::in_slow_start: bad process");
  const std::size_t i = process.value - 1;
  return !dead_[i] && ramp_start_[i] != kNoRamp &&
         ramp_fraction_at(i, now) < 1.0;
}

bool ServerFleet::process_alive(ProcessId process) const {
  check_process(process, "ServerFleet::process_alive: bad process");
  return !dead_[process.value - 1];
}

bool ServerFleet::machine_alive(MachineId machine) const {
  check_machine(machine, "ServerFleet::machine_alive: bad machine");
  return machine_processes_[machine.value - 1].size() >
         dead_on_machine_[machine.value - 1];
}

std::vector<ProcessId> ServerFleet::live_processes_on(
    MachineId machine) const {
  check_machine(machine, "ServerFleet::live_processes_on: bad machine");
  std::vector<ProcessId> out;
  for (const ProcessId p : machine_processes_[machine.value - 1])
    if (!dead_[p.value - 1]) out.push_back(p);
  return out;
}

std::uint64_t ServerFleet::open_sessions(MachineId machine) const {
  check_machine(machine, "ServerFleet::open_sessions: bad machine");
  return open_sessions_[machine.value - 1];
}

std::uint64_t ServerFleet::process_sessions(ProcessId process) const {
  check_process(process, "ServerFleet::process_sessions: bad process");
  return proc_sessions_[process.value - 1];
}

std::uint64_t ServerFleet::total_open_sessions() const noexcept {
  return std::accumulate(open_sessions_.begin(), open_sessions_.end(),
                         std::uint64_t{0});
}

std::size_t ServerFleet::migrate_processes(double fraction) {
  if (fraction < 0.0 || fraction > 1.0)
    throw std::invalid_argument("migrate_processes: fraction not in [0,1]");
  std::size_t moved = 0;
  for (std::size_t p = 0; p < process_machine_.size(); ++p) {
    if (!rng_.chance(fraction)) continue;
    // Dead processes stay where they died (checked after the chance draw
    // so the migration RNG stream matches the fault-free fleet).
    if (dead_[p]) continue;
    const MachineId from = process_machine_[p];
    const MachineId to{rng_.below(machines_) + 1};
    if (to == from) continue;
    auto& src = machine_processes_[from.value - 1];
    // A machine must keep at least one process to stay placeable.
    if (src.size() <= 1) continue;
    src.erase(std::remove(src.begin(), src.end(), ProcessId{p + 1}),
              src.end());
    machine_processes_[to.value - 1].push_back(ProcessId{p + 1});
    process_machine_[p] = to;
    ++moved;
  }
  return moved;
}

}  // namespace u1
