#include "analysis/fault_recovery.hpp"

#include "trace/record.hpp"

namespace u1 {

void FaultRecoveryAnalyzer::append(const TraceRecord& r) {
  if (r.type == RecordType::kFault) {
    ++fault_edges_;
    // fault field: "<kind>#<id>:begin|end"; the label keys the window.
    const std::string_view fault = r.fault();
    const std::size_t colon = fault.rfind(':');
    if (colon == std::string_view::npos) return;
    const std::string label(fault.substr(0, colon));
    const bool begin = fault.substr(colon + 1) == "begin";
    if (begin) {
      FaultWindowStats w;
      w.label = label;
      w.begin = r.t;
      windows_.push_back(std::move(w));
    } else {
      for (auto it = windows_.rbegin(); it != windows_.rend(); ++it) {
        if (it->label == label && it->end == 0) {
          it->end = r.t;
          break;
        }
      }
    }
    return;
  }
  if (r.type == RecordType::kSession) {
    switch (r.session_event) {
      case SessionEvent::kDropped: ++dropped_; break;
      case SessionEvent::kTryAgain: ++shed_; break;
      case SessionEvent::kAuthFail:
        if (r.t >= 0) ++auth_failures_;
        break;
      default: break;
    }
    return;
  }
  if (r.type == RecordType::kStorage) {
    if (r.t >= 0 && r.api_op == ApiOp::kPutContent) ++put_attempts_;
    return;
  }
  if (r.type != RecordType::kStorageDone || r.t < 0) return;
  ++done_total_;
  if (r.failed) {
    ++done_failed_;
    for (auto& w : windows_) {
      if (r.t >= w.begin && (w.end == 0 || r.t <= w.end))
        ++w.failed_ops_during;
    }
    return;
  }
  if (r.api_op == ApiOp::kPutContent) ++put_successes_;
  for (auto& w : windows_) {
    if (w.end != 0 && w.time_to_recover < 0 && r.t >= w.end)
      w.time_to_recover = r.t - w.end;
  }
}

double FaultRecoveryAnalyzer::availability() const {
  if (done_total_ == 0) return 1.0;
  return 1.0 - static_cast<double>(done_failed_) /
                   static_cast<double>(done_total_);
}

double FaultRecoveryAnalyzer::retry_amplification() const {
  if (put_successes_ == 0) return put_attempts_ > 0 ? 0.0 : 1.0;
  return static_cast<double>(put_attempts_) /
         static_cast<double>(put_successes_);
}

}  // namespace u1
