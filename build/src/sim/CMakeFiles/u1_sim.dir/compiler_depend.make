# Empty compiler generated dependencies file for u1_sim.
# This may be replaced when dependencies are built.
