// Closed-loop load generator for u1d (DESIGN.md §9): N connections, each
// a thread running the classic closed loop — issue one storage operation,
// wait for the response, think, repeat. Per-op wall-clock latencies are
// collected into percentile summaries and written to BENCH_net.json.
//
// This is the request-cloning playbook (arXiv:2002.04416) applied to the
// reproduction: a bounded, self-paced burst against a real service
// boundary, so concurrency/backpressure questions have a harness the
// discrete-event simulation alone cannot provide.
//
// Usage:
//   bench_net_closedloop --connect PORT [--connections N] [--think-ms M]
//                        [--ops K] [--out FILE]
//
// Exit status is nonzero when any protocol error was observed — the CI
// loopback smoke asserts a clean run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_mem.hpp"
#include "net/client.hpp"
#include "proto/envelope.hpp"
#include "util/sha1.hpp"
#include "util/sim_time.hpp"

namespace {

using namespace u1;
using Clock = std::chrono::steady_clock;

struct Options {
  std::uint16_t port = 0;
  std::size_t connections = 64;
  int think_ms = 5;
  std::size_t ops = 50;  // storage ops per connection after the handshake
  std::string out = "BENCH_net.json";
};

struct OpSample {
  ProtoOp op;
  double micros;
};

struct WorkerResult {
  std::vector<OpSample> samples;
  std::uint64_t requests = 0;
  std::uint64_t protocol_errors = 0;
  bool connect_failed = false;
};

double elapsed_us(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

/// One timed envelope round trip; returns the response (nullopt = dead
/// connection, counted as a protocol error by the caller).
std::optional<Response> timed_call(BlockingClient& client, const Request& q,
                                   WorkerResult& res) {
  const auto t0 = Clock::now();
  auto resp = client.call(q);
  ++res.requests;
  if (resp) res.samples.push_back({q.op, elapsed_us(t0)});
  if (!resp || is_protocol_error(resp->status)) ++res.protocol_errors;
  return resp;
}

WorkerResult run_worker(const Options& opt, std::size_t index) {
  WorkerResult res;
  BlockingClient client;
  if (!client.connect_loopback(opt.port)) {
    res.connect_failed = true;
    return res;
  }
  std::mt19937_64 rng(20140111u + index);
  const UserId uid{1000 + index};
  SimTime vnow = kHour;  // per-connection virtual clock
  const SimTime vthink = opt.think_ms * kMillisecond;
  const auto think = [&] {
    if (opt.think_ms > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(opt.think_ms));
    vnow += vthink;
  };

  // Provision + authenticate (Table 2 flow over the wire).
  Request reg;
  reg.op = ProtoOp::kRegisterUser;
  reg.user = uid;
  reg.now = vnow;
  const auto acc = timed_call(client, reg, res);
  if (!acc || !acc->ok()) return res;
  const VolumeId volume = acc->volume;
  const NodeId root = acc->root_dir;

  Request conn;
  conn.op = ProtoOp::kConnect;
  conn.user = uid;
  conn.now = vnow;
  const auto sess = timed_call(client, conn, res);
  if (!sess || !sess->ok()) return res;
  const SessionId session = sess->session;
  vnow = sess->end;
  think();

  std::vector<NodeId> files;  // uploaded nodes, downloadable
  for (std::size_t i = 0; i < opt.ops; ++i) {
    const double dice = std::uniform_real_distribution<>(0, 1)(rng);
    if (dice < 0.40 || files.empty()) {
      // MakeFile + PutContent (the dominant op pair, paper Table 3).
      char name[9];
      std::snprintf(name, sizeof name, "%08llx",
                    static_cast<unsigned long long>(rng() & 0xffffffffu));
      Request mk;
      mk.op = ProtoOp::kMakeFile;
      mk.session = session;
      mk.volume = volume;
      mk.parent = root;
      mk.set_name_hash(name);
      mk.set_extension("jpg");
      mk.now = vnow;
      const auto mkr = timed_call(client, mk, res);
      if (!mkr) break;
      vnow = mkr->end;
      if (mkr->ok()) {
        Request up;
        up.op = ProtoOp::kUpload;
        up.session = session;
        up.node = mkr->node;
        up.content = Sha1::of(std::string("blob-") + name);
        up.size_bytes = 64 * 1024 + (rng() % (512 * 1024));
        up.now = vnow;
        const auto upr = timed_call(client, up, res);
        if (!upr) break;
        vnow = upr->end;
        if (upr->ok()) files.push_back(mkr->node);
      }
    } else if (dice < 0.75) {
      Request down;
      down.op = ProtoOp::kDownload;
      down.session = session;
      down.node = files[rng() % files.size()];
      down.now = vnow;
      const auto dr = timed_call(client, down, res);
      if (!dr) break;
      vnow = dr->end;
    } else {
      Request delta;
      delta.op = ProtoOp::kGetDelta;
      delta.session = session;
      delta.volume = volume;
      delta.now = vnow;
      const auto gr = timed_call(client, delta, res);
      if (!gr) break;
      vnow = gr->end;
    }
    think();
  }

  Request disc;
  disc.op = ProtoOp::kDisconnect;
  disc.session = session;
  disc.now = vnow;
  timed_call(client, disc, res);
  return res;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double idx = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --connect PORT [--connections N] [--think-ms M] "
               "[--ops K] [--out FILE]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--connect" && (v = next())) {
      opt.port = static_cast<std::uint16_t>(std::atoi(v));
    } else if (arg == "--connections" && (v = next())) {
      opt.connections = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--think-ms" && (v = next())) {
      opt.think_ms = std::atoi(v);
    } else if (arg == "--ops" && (v = next())) {
      opt.ops = static_cast<std::size_t>(std::atol(v));
    } else if (arg == "--out" && (v = next())) {
      opt.out = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.port == 0) return usage(argv[0]);

  std::printf("# bench_net_closedloop | port=%u connections=%zu "
              "think_ms=%d ops=%zu\n",
              static_cast<unsigned>(opt.port), opt.connections, opt.think_ms,
              opt.ops);

  const auto t0 = Clock::now();
  std::vector<WorkerResult> results(opt.connections);
  {
    std::vector<std::thread> threads;
    threads.reserve(opt.connections);
    for (std::size_t i = 0; i < opt.connections; ++i) {
      threads.emplace_back(
          [&, i] { results[i] = run_worker(opt, i); });
    }
    for (auto& t : threads) t.join();
  }
  const double wall_s = elapsed_us(t0) / 1e6;

  std::uint64_t requests = 0, protocol_errors = 0, failed_connects = 0;
  std::map<ProtoOp, std::vector<double>> by_op;
  for (const WorkerResult& r : results) {
    requests += r.requests;
    protocol_errors += r.protocol_errors;
    failed_connects += r.connect_failed ? 1 : 0;
    for (const OpSample& s : r.samples) by_op[s.op].push_back(s.micros);
  }

  FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", opt.out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"connections\": %zu,\n  \"ops_per_connection\": %zu,\n"
               "  \"think_ms\": %d,\n  \"requests\": %llu,\n"
               "  \"protocol_errors\": %llu,\n  \"failed_connects\": %llu,\n"
               "  \"wall_s\": %.3f,\n  \"throughput_rps\": %.1f,\n"
               "  \"peak_rss_kb\": %llu,\n  \"heap_in_use_kb\": %llu,\n"
               "  \"per_op\": {\n",
               opt.connections, opt.ops, opt.think_ms,
               static_cast<unsigned long long>(requests),
               static_cast<unsigned long long>(protocol_errors),
               static_cast<unsigned long long>(failed_connects), wall_s,
               wall_s > 0 ? static_cast<double>(requests) / wall_s : 0.0,
               static_cast<unsigned long long>(u1::bench::peak_rss_kb()),
               static_cast<unsigned long long>(u1::bench::heap_in_use_kb()));
  bool first = true;
  for (auto& [op, lat] : by_op) {
    std::sort(lat.begin(), lat.end());
    double sum = 0;
    for (const double x : lat) sum += x;
    std::fprintf(f,
                 "%s    \"%.*s\": {\"count\": %zu, \"mean_us\": %.1f, "
                 "\"p50_us\": %.1f, \"p90_us\": %.1f, \"p99_us\": %.1f}",
                 first ? "" : ",\n",
                 static_cast<int>(to_string(op).size()), to_string(op).data(),
                 lat.size(), sum / static_cast<double>(lat.size()),
                 percentile(lat, 0.50), percentile(lat, 0.90),
                 percentile(lat, 0.99));
    first = false;
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);

  std::printf("# %llu requests in %.2fs (%.0f rps), %llu protocol errors, "
              "%llu failed connects -> %s\n",
              static_cast<unsigned long long>(requests), wall_s,
              wall_s > 0 ? static_cast<double>(requests) / wall_s : 0.0,
              static_cast<unsigned long long>(protocol_errors),
              static_cast<unsigned long long>(failed_connects),
              opt.out.c_str());
  return (protocol_errors == 0 && failed_connects == 0) ? 0 : 1;
}
