// Bounded MPSC inter-epoch mailbox (the ROADMAP's "lock-free inter-epoch
// mailbox"). One lane per shard group; producers post cross-group
// commands from any thread during an epoch or a pipelined flush, and the
// coordinator drains everything at the barrier.
//
// post() is wait-free on the common path: an atomic fetch_add claims a
// slot in the lane's fixed-capacity ring. A lane that overflows its ring
// spills to a mutex-guarded vector — commands are never dropped, the
// bound only caps the lock-free fast path.
//
// drain() is single-consumer by construction (the epoch barrier): it
// visits lanes in index order, ring before spill, each in production
// order. Delivery order is therefore a pure function of the per-lane
// production orders — deterministic whenever each lane's producer is
// (in this engine: the flusher's guard scan, which walks the merged
// trace in its deterministic total order).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace u1 {

template <typename T>
class EpochMailbox {
 public:
  EpochMailbox() = default;
  explicit EpochMailbox(std::size_t lanes, std::size_t lane_capacity = 64) {
    reset(lanes, lane_capacity);
  }

  /// (Re)shapes the mailbox; discards anything pending. Not thread-safe.
  void reset(std::size_t lanes, std::size_t lane_capacity = 64) {
    lanes_.clear();
    lanes_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      auto lane = std::make_unique<Lane>();
      lane->ring.resize(lane_capacity);
      lanes_.push_back(std::move(lane));
    }
  }

  std::size_t lanes() const noexcept { return lanes_.size(); }
  std::size_t lane_capacity() const noexcept {
    return lanes_.empty() ? 0 : lanes_.front()->ring.size();
  }

  /// Thread-safe. Posts `value` to `lane`; wait-free unless the lane's
  /// ring is full (then a mutex-guarded spill keeps the value).
  void post(std::size_t lane_index, T value) {
    Lane& lane = *lanes_[lane_index];
    const std::size_t slot =
        lane.claimed.fetch_add(1, std::memory_order_acq_rel);
    if (slot < lane.ring.size()) {
      lane.ring[slot] = std::move(value);
    } else {
      const std::lock_guard<std::mutex> lock(lane.spill_mu);
      lane.spill.push_back(std::move(value));
    }
  }

  /// Single-consumer, at the barrier (all producers quiesced). Calls
  /// fn(lane_index, value) for every pending value — lanes in index
  /// order, ring slots before spill, each in production order — then
  /// leaves the mailbox empty.
  template <typename Fn>
  void drain(Fn&& fn) {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      Lane& lane = *lanes_[i];
      const std::size_t claimed = lane.claimed.load(std::memory_order_acquire);
      const std::size_t in_ring = std::min(claimed, lane.ring.size());
      for (std::size_t s = 0; s < in_ring; ++s)
        fn(i, std::move(lane.ring[s]));
      if (claimed > lane.ring.size()) {
        const std::lock_guard<std::mutex> lock(lane.spill_mu);
        for (T& value : lane.spill) fn(i, std::move(value));
        lane.spill.clear();
      }
      lane.claimed.store(0, std::memory_order_release);
    }
  }

  /// Pending values across all lanes (single-consumer context only).
  std::size_t pending() const noexcept {
    std::size_t n = 0;
    for (const auto& lane : lanes_)
      n += lane->claimed.load(std::memory_order_acquire);
    return n;
  }

 private:
  struct Lane {
    std::vector<T> ring;  // fixed capacity; slots claimed atomically
    std::atomic<std::size_t> claimed{0};
    std::mutex spill_mu;
    std::vector<T> spill;  // overflow beyond the ring, in post order
  };
  // unique_ptr: lanes hold an atomic + mutex and must stay address-stable.
  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace u1
