file(REMOVE_RECURSE
  "libu1_proto.a"
)
