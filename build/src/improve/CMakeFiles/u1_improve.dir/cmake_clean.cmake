file(REMOVE_RECURSE
  "CMakeFiles/u1_improve.dir/anomaly_guard.cpp.o"
  "CMakeFiles/u1_improve.dir/anomaly_guard.cpp.o.d"
  "CMakeFiles/u1_improve.dir/content_cache.cpp.o"
  "CMakeFiles/u1_improve.dir/content_cache.cpp.o.d"
  "CMakeFiles/u1_improve.dir/push_pull.cpp.o"
  "CMakeFiles/u1_improve.dir/push_pull.cpp.o.d"
  "CMakeFiles/u1_improve.dir/warm_tier.cpp.o"
  "CMakeFiles/u1_improve.dir/warm_tier.cpp.o.d"
  "libu1_improve.a"
  "libu1_improve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_improve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
