# Empty dependencies file for bench_fig02c_rw_ratio.
# This may be replaced when dependencies are built.
