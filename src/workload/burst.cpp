#include "workload/burst.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace u1 {

BurstProcess::BurstProcess(const BurstParams& params) : params_(params) {
  if (params.in_burst_mean_s <= 0 || params.idle_theta_s <= 0 ||
      params.idle_alpha <= 1.0 || params.continue_prob < 0 ||
      params.continue_prob >= 1.0 || params.idle_cap_s <= params.idle_theta_s)
    throw std::invalid_argument("BurstParams: invalid");
}

SimTime BurstProcess::next_gap(Rng& rng) const {
  if (rng.chance(params_.continue_prob)) {
    // In-burst: exponential around a couple of seconds.
    const double gap =
        -params_.in_burst_mean_s * std::log(1.0 - rng.uniform());
    return from_seconds(std::max(0.05, gap));
  }
  // Idle: Pareto tail, P(X > x) = (theta/x)^alpha for x >= theta.
  const double u = 1.0 - rng.uniform();
  const double gap =
      params_.idle_theta_s / std::pow(u, 1.0 / params_.idle_alpha);
  return from_seconds(std::min(gap, params_.idle_cap_s));
}

}  // namespace u1
