file(REMOVE_RECURSE
  "libu1_workload.a"
)
