// Adaptive push/pull session policy (paper §7.3/§9, after Deolasee et
// al.): 94% of U1 connections never issue a storage operation, yet every
// one holds a push-capable TCP connection. The policy tracks per-user
// activity and assigns each new session a mode:
//   kPush — keep the persistent connection (active users, low latency);
//   kPull — close after the handshake, poll periodically (cold users).
// The tracker estimates the connection-slots saved and the notification
// latency cost.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "proto/ids.hpp"
#include "util/sim_time.hpp"

namespace u1 {

enum class SessionMode : std::uint8_t { kPush, kPull };

struct PushPullConfig {
  /// A user stays in push mode while their EWMA of storage ops per
  /// session is above this.
  double active_threshold = 0.2;
  /// EWMA weight for per-session activity.
  double alpha = 0.3;
  /// Pull-mode poll interval (notification latency bound).
  SimTime poll_interval = 30 * kMinute;
  /// New users start in push mode for this many sessions (grace).
  int grace_sessions = 3;
};

class PushPullPolicy {
 public:
  explicit PushPullPolicy(const PushPullConfig& config = {});

  /// Mode for the user's next session.
  SessionMode decide(UserId user) const;

  /// Report a finished session: how many storage ops it performed and how
  /// long it stayed open. Updates the user's activity estimate and the
  /// global savings accounting.
  void report_session(UserId user, std::uint64_t storage_ops,
                      SimTime length);

  /// Connection-seconds that pull mode would not have held open.
  double saved_connection_hours() const noexcept { return saved_hours_; }
  /// Sessions that were in pull mode but turned out active — each one
  /// paid up to poll_interval of extra sync latency.
  std::uint64_t mispredicted_active() const noexcept {
    return mispredicted_;
  }
  std::uint64_t pull_sessions() const noexcept { return pull_sessions_; }
  std::uint64_t push_sessions() const noexcept { return push_sessions_; }
  double activity_estimate(UserId user) const;

 private:
  struct UserState {
    double ewma_ops = 0;
    int sessions = 0;
  };

  PushPullConfig config_;
  std::unordered_map<UserId, UserState> users_;
  double saved_hours_ = 0;
  std::uint64_t mispredicted_ = 0;
  std::uint64_t pull_sessions_ = 0;
  std::uint64_t push_sessions_ = 0;
};

}  // namespace u1
