// Operation mix (paper §6.1, Fig. 7a): absolute number of each API
// operation type, including session open/close, for one month.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/sink.hpp"

namespace u1 {

class OpMixAnalyzer final : public TraceSink {
 public:
  void append(const TraceRecord& record) override;

  std::uint64_t count(ApiOp op) const noexcept {
    return counts_[static_cast<std::size_t>(op)];
  }
  std::uint64_t open_sessions() const noexcept { return opens_; }
  std::uint64_t close_sessions() const noexcept { return closes_; }
  std::uint64_t total_api_ops() const noexcept { return total_; }

  /// Operations sorted by count, descending — the Fig. 7a bar order.
  std::vector<std::pair<ApiOp, std::uint64_t>> ranked() const;

  /// The paper's observation: data-management operations dominate, i.e.
  /// session-bookkeeping ops (ListVolumes/ListShares/...) are NOT the top
  /// of the ranking.
  bool data_ops_dominate() const;

 private:
  std::array<std::uint64_t, kApiOpCount> counts_{};
  std::uint64_t opens_ = 0;
  std::uint64_t closes_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace u1
