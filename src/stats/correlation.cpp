#include "stats/correlation.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace u1 {

double pearson(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("pearson: length mismatch");
  const std::size_t n = x.size();
  if (n < 2) throw std::invalid_argument("pearson: need n >= 2");

  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);

  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0 || syy == 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

std::vector<double> ranks_of(std::span<const double> v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && v[order[j]] == v[order[i]]) ++j;
    const double mid = (static_cast<double>(i) + static_cast<double>(j - 1)) /
                           2.0 +
                       1.0;  // 1-based mid-rank
    for (std::size_t k = i; k < j; ++k) ranks[order[k]] = mid;
    i = j;
  }
  return ranks;
}

}  // namespace

double spearman(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("spearman: length mismatch");
  const auto rx = ranks_of(x);
  const auto ry = ranks_of(y);
  return pearson(rx, ry);
}

}  // namespace u1
