// Fig. 4(a): duplicated files per hash CDF and the dedup ratio.
#include "analysis/dedup.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  DedupAnalyzer dedup;
  auto sim = run_into(dedup, cfg);

  header("Fig 4(a)", "File-based deduplication");
  row("dedup ratio dr = 1 - Dunique/Dtotal", 0.171, dedup.dedup_ratio());
  row("hashes with no duplicates (share)", 0.80, dedup.unique_fraction());
  row("dedup hits / upload ops", 0.171,
      dedup.upload_ops_seen() > 0
          ? static_cast<double>(dedup.dedup_hits_seen()) /
                static_cast<double>(dedup.upload_ops_seen())
          : 0.0);

  auto copies = dedup.copies_per_hash();
  if (!copies.empty()) {
    Ecdf c{std::move(copies)};
    std::printf("\n  copies-per-hash CDF:\n");
    for (const double x : {1.0, 2.0, 5.0, 10.0, 100.0, 1000.0}) {
      std::printf("    <= %-6.0f : %.4f\n", x, c.at(x));
    }
    std::printf("    most-duplicated content: %.0f logical copies\n",
                c.max());
  }
  // Whole-service view (registry state includes pre-trace history).
  row("back-end registry dedup ratio", 0.171,
      sim->contents().dedup_ratio());
  note("paper: a small number of contents accounts for very many "
       "duplicates (popular songs) — a dedup hot spot");
  return 0;
}
