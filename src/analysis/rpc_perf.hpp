// Metadata back-end RPC performance (paper §7.1): the per-RPC service-time
// distributions of Fig. 12 (with their long tails) and the Fig. 13 scatter
// of median service time vs operation count by RPC class.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "stats/reservoir.hpp"
#include "trace/sink.hpp"

namespace u1 {

class RpcPerfAnalyzer final : public TraceSink {
 public:
  /// cap: reservoir size per RPC type (memory bound for month traces).
  explicit RpcPerfAnalyzer(std::size_t cap = 100000);

  void append(const TraceRecord& record) override;

  /// Uniform sample of service times (seconds) for one RPC.
  std::vector<double> service_times(RpcOp op) const;
  std::uint64_t count(RpcOp op) const noexcept;

  /// Median service time in seconds (0 when the RPC never appeared).
  double median_s(RpcOp op) const;

  /// Fraction of samples beyond `factor` x median — the paper's "7% to
  /// 22% of RPC service times are very far from the median".
  double tail_fraction(RpcOp op, double factor = 8.0) const;

  struct ScatterPoint {
    RpcOp op;
    RpcClass rpc_class;
    std::uint64_t count = 0;
    double median_s = 0;
  };
  /// One point per observed RPC — the Fig. 13 scatter.
  std::vector<ScatterPoint> scatter() const;

 private:
  std::array<ReservoirSampler, kRpcOpCount> samples_;
  std::array<std::uint64_t, kRpcOpCount> counts_{};
};

}  // namespace u1
