#include "store/metadata_store.hpp"

#include <algorithm>
#include <stdexcept>

namespace u1 {

MetadataStore::MetadataStore(std::size_t n_shards, std::uint64_t seed)
    : rng_(seed) {
  if (n_shards == 0)
    throw std::invalid_argument("MetadataStore: n_shards == 0");
  touched_.reserve(4);  // 1 shard for most ops, a handful for share fan-out.
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i)
    shards_.push_back(std::make_unique<Shard>(ShardId{i + 1}));
}

ShardId MetadataStore::shard_of(UserId user) const noexcept {
  // Mixed hash so that sequential synthetic user ids spread evenly.
  const std::size_t h = std::hash<UserId>{}(user);
  return ShardId{h % shards_.size() + 1};
}

Shard& MetadataStore::shard_ref(ShardId id) {
  return *shards_[id.value - 1];
}

const Shard& MetadataStore::shard(ShardId id) const {
  if (id.value == 0 || id.value > shards_.size())
    throw std::out_of_range("MetadataStore::shard: bad shard id");
  return *shards_[id.value - 1];
}

Shard& MetadataStore::route(UserId user) { return shard_ref(shard_of(user)); }

void MetadataStore::touch(ShardId id) {
  if (std::find(touched_.begin(), touched_.end(), id) == touched_.end())
    touched_.push_back(id);
}

Volume MetadataStore::create_user(UserId user, SimTime now) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  return s.create_user(user, now, rng_);
}

bool MetadataStore::has_user(UserId user) const {
  const ShardId sid = shard_of(user);
  return shards_[sid.value - 1]->has_user(user);
}

std::vector<Volume> MetadataStore::list_volumes(UserId user) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  auto volumes = s.list_volumes(user);
  // Shared volumes appear in ListVolumes output too (paper Table 2: root,
  // user-defined, shared); resolving them touches the owners' shards.
  for (const ShareGrant& g : s.share_grants(user)) {
    Shard& owner_shard = route(g.shared_by);
    touch(owner_shard.id());
    if (const Volume* v = owner_shard.find_volume(g.volume))
      volumes.push_back(*v);
  }
  return volumes;
}

std::vector<Volume> MetadataStore::list_shares(UserId user) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  std::vector<Volume> out;
  for (const ShareGrant& g : s.share_grants(user)) {
    Shard& owner_shard = route(g.shared_by);
    touch(owner_shard.id());
    if (const Volume* v = owner_shard.find_volume(g.volume)) {
      Volume shared = *v;
      shared.kind = VolumeKind::kShared;
      shared.shared_to = user;
      out.push_back(shared);
    }
  }
  return out;
}

std::optional<User> MetadataStore::get_user_data(UserId user) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  return s.get_user(user);
}

std::optional<Node> MetadataStore::get_node(UserId owner, NodeId id) {
  reset_touched();
  Shard& s = route(owner);
  touch(s.id());
  const Node* n = s.find_node(id);
  if (n == nullptr) return std::nullopt;
  return *n;
}

NodeId MetadataStore::get_root(UserId user) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  return s.root_volume(user).root_dir;
}

std::vector<Node> MetadataStore::get_delta(UserId owner, VolumeId volume,
                                           std::uint64_t since_generation) {
  reset_touched();
  Shard& s = route(owner);
  touch(s.id());
  return s.get_delta(volume, since_generation);
}

std::vector<Node> MetadataStore::get_from_scratch(UserId owner,
                                                  VolumeId volume) {
  reset_touched();
  Shard& s = route(owner);
  touch(s.id());
  return s.get_from_scratch(volume);
}

Node MetadataStore::make_dir(UserId user, VolumeId volume, NodeId parent,
                             std::string name_hash, SimTime now) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  return s.make_node(user, volume, parent, NodeKind::kDirectory,
                     std::move(name_hash), "", now, rng_);
}

Node MetadataStore::make_file(UserId user, VolumeId volume, NodeId parent,
                              std::string name_hash, std::string extension,
                              SimTime now) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  return s.make_node(user, volume, parent, NodeKind::kFile,
                     std::move(name_hash), std::move(extension), now, rng_);
}

std::vector<ContentInfo> MetadataStore::unlink_node(UserId user, NodeId id) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  std::vector<ContentInfo> dead;
  for (const ContentId& cid : s.unlink_node(id)) {
    if (auto info = dedup().unlink(cid)) dead.push_back(*info);
  }
  return dead;
}

void MetadataStore::move(UserId user, NodeId id, NodeId new_parent) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  s.move_node(id, new_parent);
}

Volume MetadataStore::create_udf(UserId user, SimTime now) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  return s.create_udf(user, now, rng_);
}

std::vector<ContentInfo> MetadataStore::delete_volume(UserId user,
                                                      VolumeId volume) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  std::vector<ContentInfo> dead;
  for (const ContentId& cid : s.delete_volume(volume)) {
    if (auto info = dedup().unlink(cid)) dead.push_back(*info);
  }
  return dead;
}

std::optional<ContentInfo> MetadataStore::get_reusable_content(
    const ContentId& content, std::uint64_t size_bytes) {
  reset_touched();
  // The dedup index is content-addressed; model it as hitting the shard
  // derived from the hash prefix (any shard can serve it).
  touch(ShardId{content.prefix64() % shards_.size() + 1});
  return dedup().lookup(content, size_bytes);
}

void MetadataStore::purge_content(const ContentId& content) {
  dedup().erase(content);
}

std::optional<ContentInfo> MetadataStore::make_content(
    UserId user, NodeId node, const ContentId& content,
    std::uint64_t size_bytes, std::string s3_key) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  dedup().insert(content, size_bytes, std::move(s3_key));
  const ContentId previous = s.set_node_content(node, content, size_bytes);
  dedup().link(content);
  if (!(previous == ContentId{}) && !(previous == content)) {
    if (auto dead = dedup().unlink(previous)) return dead;
  }
  return std::nullopt;
}

UploadJob MetadataStore::make_uploadjob(UserId user, NodeId node,
                                        const ContentId& content,
                                        std::uint64_t declared_size,
                                        SimTime now) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  return s.make_uploadjob(user, node, content, declared_size, now, rng_);
}

std::optional<UploadJob> MetadataStore::get_uploadjob(UserId user,
                                                      UploadJobId id) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  UploadJob* job = s.find_uploadjob(id);
  if (job == nullptr) return std::nullopt;
  return *job;
}

void MetadataStore::set_uploadjob_multipart_id(UserId user, UploadJobId id,
                                               std::string multipart_id) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  UploadJob* job = s.find_uploadjob(id);
  if (job == nullptr)
    throw std::out_of_range("set_uploadjob_multipart_id: unknown job");
  job->multipart_id = std::move(multipart_id);
}

std::uint64_t MetadataStore::add_part_to_uploadjob(UserId user, UploadJobId id,
                                                   std::uint64_t part_bytes,
                                                   SimTime now) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  UploadJob* job = s.find_uploadjob(id);
  if (job == nullptr)
    throw std::out_of_range("add_part_to_uploadjob: unknown job");
  ++job->parts;
  job->bytes_received += part_bytes;
  job->last_touched = now;
  return job->bytes_received;
}

void MetadataStore::touch_uploadjob(UserId user, UploadJobId id, SimTime now) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  UploadJob* job = s.find_uploadjob(id);
  if (job == nullptr)
    throw std::out_of_range("touch_uploadjob: unknown job");
  job->last_touched = now;
}

void MetadataStore::delete_uploadjob(UserId user, UploadJobId id) {
  reset_touched();
  Shard& s = route(user);
  touch(s.id());
  s.delete_uploadjob(id);
}

std::vector<UploadJob> MetadataStore::gc_uploadjobs(SimTime cutoff) {
  reset_touched();
  std::vector<UploadJob> collected;
  for (auto& shard : shards_) {
    touch(shard->id());
    for (const UploadJobId& jid : shard->stale_uploadjobs(cutoff)) {
      if (const UploadJob* job = shard->find_uploadjob(jid))
        collected.push_back(*job);
      shard->delete_uploadjob(jid);
    }
  }
  return collected;
}

void MetadataStore::share_volume(UserId owner, VolumeId volume, UserId to,
                                 SimTime now) {
  reset_touched();
  Shard& owner_shard = route(owner);
  touch(owner_shard.id());
  if (owner_shard.find_volume(volume) == nullptr)
    throw std::out_of_range("share_volume: unknown volume");
  Shard& to_shard = route(to);
  touch(to_shard.id());
  if (!to_shard.has_user(to))
    throw std::out_of_range("share_volume: unknown recipient");
  to_shard.add_share_grant(ShareGrant{volume, owner, to, now});
}

std::size_t MetadataStore::total_nodes() const noexcept {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->node_count();
  return n;
}

std::size_t MetadataStore::total_users() const noexcept {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->user_count();
  return n;
}

}  // namespace u1
