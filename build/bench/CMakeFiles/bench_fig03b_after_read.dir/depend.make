# Empty dependencies file for bench_fig03b_after_read.
# This may be replaced when dependencies are built.
