file(REMOVE_RECURSE
  "CMakeFiles/u1_stats.dir/acf.cpp.o"
  "CMakeFiles/u1_stats.dir/acf.cpp.o.d"
  "CMakeFiles/u1_stats.dir/correlation.cpp.o"
  "CMakeFiles/u1_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/u1_stats.dir/ecdf.cpp.o"
  "CMakeFiles/u1_stats.dir/ecdf.cpp.o.d"
  "CMakeFiles/u1_stats.dir/gini.cpp.o"
  "CMakeFiles/u1_stats.dir/gini.cpp.o.d"
  "CMakeFiles/u1_stats.dir/histogram.cpp.o"
  "CMakeFiles/u1_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/u1_stats.dir/powerlaw.cpp.o"
  "CMakeFiles/u1_stats.dir/powerlaw.cpp.o.d"
  "CMakeFiles/u1_stats.dir/summary.cpp.o"
  "CMakeFiles/u1_stats.dir/summary.cpp.o.d"
  "CMakeFiles/u1_stats.dir/timeseries.cpp.o"
  "CMakeFiles/u1_stats.dir/timeseries.cpp.o.d"
  "libu1_stats.a"
  "libu1_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u1_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
