#include "stats/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "proto/wire.hpp"

namespace u1 {
namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// QuantileSketch

QuantileSketch::QuantileSketch(std::size_t k) : k_(k) {
  if (k_ < 8) throw std::invalid_argument("QuantileSketch: k must be >= 8");
  if (k_ % 2 != 0) ++k_;  // compaction pairs items
}

void QuantileSketch::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  if (levels_.empty()) {
    levels_.emplace_back();
    levels_.front().reserve(k_);
    parity_.push_back(0);
  }
  levels_[0].push_back(x);
  for (std::size_t h = 0; h < levels_.size(); ++h)
    if (levels_[h].size() >= k_) compact_level(h);
}

void QuantileSketch::compact_level(std::size_t h) {
  if (h + 1 >= levels_.size()) {
    levels_.emplace_back();
    levels_.back().reserve(k_);
    parity_.push_back(0);
  }
  std::vector<double>& buf = levels_[h];
  std::sort(buf.begin(), buf.end());
  std::size_t m = buf.size();
  // An odd buffer keeps its largest item behind (weight must pair up);
  // it seeds the next compaction of this level.
  const bool carry = (m % 2) != 0;
  if (carry) --m;
  const std::size_t offset = parity_[h];
  parity_[h] ^= 1;  // alternating parity: consecutive compactions cancel
  std::vector<double>& up = levels_[h + 1];
  for (std::size_t i = offset; i < m; i += 2) up.push_back(buf[i]);
  if (carry) buf[0] = buf[m];
  buf.resize(carry ? 1 : 0);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  n_ += other.n_;
  k_ = std::min(k_, other.k_);
  while (levels_.size() < other.levels_.size()) {
    levels_.emplace_back();
    parity_.push_back(0);
  }
  for (std::size_t h = 0; h < other.levels_.size(); ++h)
    levels_[h].insert(levels_[h].end(), other.levels_[h].begin(),
                      other.levels_[h].end());
  for (std::size_t h = 0; h < levels_.size(); ++h)
    if (levels_[h].size() >= k_) compact_level(h);
}

double QuantileSketch::min() const {
  if (n_ == 0) throw std::logic_error("QuantileSketch::min: empty");
  return min_;
}

double QuantileSketch::max() const {
  if (n_ == 0) throw std::logic_error("QuantileSketch::max: empty");
  return max_;
}

std::vector<std::pair<double, std::uint64_t>> QuantileSketch::weighted_sorted()
    const {
  std::vector<std::pair<double, std::uint64_t>> out;
  out.reserve(stored_items());
  for (std::size_t h = 0; h < levels_.size(); ++h) {
    const std::uint64_t w = 1ull << h;
    for (const double v : levels_[h]) out.emplace_back(v, w);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double QuantileSketch::quantile(double q) const {
  if (q < 0.0 || q > 1.0)
    throw std::domain_error("QuantileSketch::quantile: q not in [0,1]");
  if (n_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto items = weighted_sorted();
  const double target = q * static_cast<double>(n_);
  double cum = 0;
  for (const auto& [v, w] : items) {
    cum += static_cast<double>(w);
    if (cum >= target) return v;
  }
  return max_;
}

double QuantileSketch::rank(double x) const {
  if (n_ == 0) return 0.0;
  std::uint64_t below = 0;
  for (std::size_t h = 0; h < levels_.size(); ++h) {
    const std::uint64_t w = 1ull << h;
    for (const double v : levels_[h])
      if (v <= x) below += w;
  }
  return static_cast<double>(below) / static_cast<double>(n_);
}

std::vector<double> QuantileSketch::sorted_sample(std::size_t points) const {
  std::vector<double> out;
  if (n_ == 0 || points == 0) return out;
  out.reserve(points);
  if (points == 1) {
    out.push_back(quantile(0.5));
    return out;
  }
  const auto items = weighted_sorted();
  std::size_t i = 0;
  double cum = items.empty() ? 0.0 : static_cast<double>(items[0].second);
  for (std::size_t p = 0; p < points; ++p) {
    const double q =
        static_cast<double>(p) / static_cast<double>(points - 1);
    if (p == 0) {
      out.push_back(min_);
      continue;
    }
    if (p + 1 == points) {
      out.push_back(max_);
      continue;
    }
    const double target = q * static_cast<double>(n_);
    while (i + 1 < items.size() && cum < target) {
      ++i;
      cum += static_cast<double>(items[i].second);
    }
    out.push_back(items.empty() ? min_ : items[i].first);
  }
  return out;
}

double QuantileSketch::error_bound() const noexcept {
  if (levels_.empty()) return 0.0;
  return 2.0 * static_cast<double>(levels_.size()) /
         static_cast<double>(k_);
}

std::size_t QuantileSketch::stored_items() const noexcept {
  std::size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

// ---------------------------------------------------------------------------
// CountMinSketch

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  if (width_ < 2 || depth_ < 1)
    throw std::invalid_argument("CountMinSketch: width >= 2, depth >= 1");
  counters_.assign(width_ * depth_, 0);
}

std::size_t CountMinSketch::row_index(std::uint64_t key,
                                      std::size_t row) const noexcept {
  return static_cast<std::size_t>(
      splitmix64(key ^ splitmix64(seed_ + row)) % width_);
}

void CountMinSketch::add(std::uint64_t key, std::uint64_t weight) {
  for (std::size_t row = 0; row < depth_; ++row)
    counters_[row * width_ + row_index(key, row)] += weight;
  total_ += weight;
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key) const noexcept {
  std::uint64_t best = ~0ull;
  for (std::size_t row = 0; row < depth_; ++row)
    best = std::min(best, counters_[row * width_ + row_index(key, row)]);
  return best == ~0ull ? 0 : best;
}

void CountMinSketch::merge(const CountMinSketch& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_)
    throw std::invalid_argument("CountMinSketch::merge: dim/seed mismatch");
  for (std::size_t i = 0; i < counters_.size(); ++i)
    counters_[i] += other.counters_[i];
  total_ += other.total_;
}

// ---------------------------------------------------------------------------
// LogHistogram

LogHistogram::LogHistogram(double min_value, std::size_t bins_per_octave,
                           std::size_t max_bins)
    : min_value_(min_value),
      bins_per_octave_(static_cast<double>(bins_per_octave)) {
  if (!(min_value > 0) || bins_per_octave == 0 || max_bins < 2)
    throw std::invalid_argument("LogHistogram: bad parameters");
  counts_.assign(max_bins, 0.0);
}

std::size_t LogHistogram::bin_of(double x) const noexcept {
  if (!(x > min_value_)) return 0;
  const double octaves = std::log2(x / min_value_) * bins_per_octave_;
  const auto i = static_cast<std::size_t>(octaves) + 1;
  return std::min(i, counts_.size() - 1);
}

void LogHistogram::add(double x, double weight) {
  if (!(x >= 0))
    throw std::invalid_argument("LogHistogram::add: negative value");
  counts_[bin_of(x)] += weight;
  total_ += weight;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (min_value_ != other.min_value_ ||
      bins_per_octave_ != other.bins_per_octave_ ||
      counts_.size() != other.counts_.size())
    throw std::invalid_argument("LogHistogram::merge: parameter mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
}

double LogHistogram::count(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("LogHistogram::count");
  return counts_[i];
}

double LogHistogram::bin_lo(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("LogHistogram::bin_lo");
  if (i == 0) return 0.0;
  return min_value_ *
         std::exp2(static_cast<double>(i - 1) / bins_per_octave_);
}

double LogHistogram::bin_hi(std::size_t i) const {
  if (i >= counts_.size()) throw std::out_of_range("LogHistogram::bin_hi");
  return min_value_ * std::exp2(static_cast<double>(i) / bins_per_octave_);
}

double LogHistogram::fraction_below(double x) const {
  if (total_ <= 0 || x <= 0) return 0.0;
  const std::size_t bx = bin_of(x);
  double below = 0;
  for (std::size_t i = 0; i < bx; ++i) below += counts_[i];
  // Partial share of the containing bin: linear in the bin-0 stub,
  // log-linear elsewhere. Exact (share 0) when x is a bin boundary.
  double share;
  if (bx == 0) {
    share = std::min(x / min_value_, 1.0);
  } else {
    const double lo = bin_lo(bx);
    const double hi = bin_hi(bx);
    share = std::clamp(std::log2(x / lo) / std::log2(hi / lo), 0.0, 1.0);
  }
  return (below + share * counts_[bx]) / total_;
}

double LogHistogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0)
    throw std::domain_error("LogHistogram::quantile: q not in [0,1]");
  if (total_ <= 0) return 0.0;
  const double target = q * total_;
  double cum = 0;
  std::size_t last = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] <= 0) continue;
    if (cum + counts_[i] >= target) {
      // Within-bin interpolation, the inverse of fraction_below's model:
      // linear in the bin-0 stub, log-linear elsewhere. Keeps the rank
      // error of a quantile read well below one bin's weight instead of
      // up to a full bin of it (the geometric-midpoint snap).
      const double frac =
          std::min(std::max((target - cum) / counts_[i], 0.0), 1.0);
      if (i == 0) return min_value_ * frac;
      return bin_lo(i) * std::pow(bin_hi(i) / bin_lo(i), frac);
    }
    cum += counts_[i];
    last = i;
  }
  return bin_hi(last);
}

std::vector<double> LogHistogram::sorted_sample(std::size_t points) const {
  std::vector<double> out;
  if (total_ <= 0 || points == 0) return out;
  out.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    const double q =
        points == 1 ? 0.5
                    : static_cast<double>(p) / static_cast<double>(points - 1);
    out.push_back(quantile(q));
  }
  return out;
}

// ---------------------------------------------------------------------------
// BinnedLorenz

BinnedLorenz::BinnedLorenz(double min_value, std::size_t bins_per_octave,
                           std::size_t max_bins)
    : hist_(min_value, bins_per_octave, max_bins) {
  sums_.assign(hist_.bins(), 0.0);
}

void BinnedLorenz::add(double value) {
  if (value < 0)
    throw std::invalid_argument("BinnedLorenz::add: negative value");
  ++count_;
  if (value == 0) {
    ++zeros_;
    return;
  }
  hist_.add(value);
  sums_[hist_.bin_of(value)] += value;
  total_ += value;
}

void BinnedLorenz::merge(const BinnedLorenz& other) {
  hist_.merge(other.hist_);  // validates the binning parameters
  for (std::size_t i = 0; i < sums_.size(); ++i) sums_[i] += other.sums_[i];
  zeros_ += other.zeros_;
  count_ += other.count_;
  total_ += other.total_;
}

LorenzCurve BinnedLorenz::curve() const {
  if (count_ == 0)
    throw std::invalid_argument("BinnedLorenz::curve: empty");
  LorenzCurve out;
  out.points.emplace_back(0.0, 0.0);
  const double n = static_cast<double>(count_);
  double cum_pop = 0;
  double cum_val = 0;
  double area2 = 0;
  double prev_pop = 0;
  double prev_share = 0;
  auto emit = [&](double pop_count, double value_sum) {
    cum_pop += pop_count;
    cum_val += value_sum;
    const double pop = cum_pop / n;
    const double share = total_ > 0 ? cum_val / total_ : pop;
    out.points.emplace_back(pop, share);
    area2 += (share + prev_share) * (pop - prev_pop);
    prev_pop = pop;
    prev_share = share;
  };
  if (zeros_ > 0) emit(static_cast<double>(zeros_), 0.0);
  for (std::size_t i = 0; i < hist_.bins(); ++i) {
    const double c = hist_.count(i);
    if (c > 0) emit(c, sums_[i]);
  }
  out.gini = 1.0 - area2;
  return out;
}

// ---------------------------------------------------------------------------
// Serialization (distributed cross-process merge, DESIGN.md §12).
//
// Little-endian, varint-counted, doubles as raw 8-byte IEEE-754 bit
// patterns — byte-exact round trips, so a worker's serialized sketch
// merged on the coordinator is indistinguishable from the worker's
// in-memory sketch. Each deserialize consumes its own bytes from the
// front of the span (states nest inside control-frame payloads) and
// validates the same invariants the constructors enforce, plus sanity
// caps so a corrupt length cannot drive a huge allocation.

namespace {

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

double get_f64(wire::Cursor& c) {
  const std::uint8_t* p = c.take(8);
  if (!p) return 0.0;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

[[noreturn]] void malformed(const char* what) {
  throw std::invalid_argument(std::string(what) +
                              ": malformed serialized state");
}

/// Hands the unconsumed remainder back to the caller's span.
void advance(std::span<const std::uint8_t>& bytes, const wire::Cursor& c) {
  bytes = {c.p, static_cast<std::size_t>(c.end - c.p)};
}

}  // namespace

void QuantileSketch::serialize(std::vector<std::uint8_t>& out) const {
  wire::put_varint(out, k_);
  wire::put_varint(out, n_);
  put_f64(out, min_);
  put_f64(out, max_);
  wire::put_varint(out, levels_.size());
  for (std::size_t h = 0; h < levels_.size(); ++h) {
    wire::put_varint(out, levels_[h].size());
    for (const double v : levels_[h]) put_f64(out, v);
    out.push_back(parity_[h]);
  }
}

QuantileSketch QuantileSketch::deserialize(
    std::span<const std::uint8_t>& bytes) {
  wire::Cursor c{bytes.data(), bytes.data() + bytes.size()};
  const std::uint64_t k = c.varint();
  if (!c.ok || k < 8 || k > (1u << 20) || k % 2 != 0)
    malformed("QuantileSketch::deserialize");
  QuantileSketch s(static_cast<std::size_t>(k));
  s.n_ = c.varint();
  s.min_ = get_f64(c);
  s.max_ = get_f64(c);
  const std::uint64_t levels = c.varint();
  if (!c.ok || levels > 64) malformed("QuantileSketch::deserialize");
  s.levels_.resize(static_cast<std::size_t>(levels));
  s.parity_.resize(static_cast<std::size_t>(levels));
  for (std::size_t h = 0; h < s.levels_.size(); ++h) {
    const std::uint64_t n = c.varint();
    if (!c.ok || n > k) malformed("QuantileSketch::deserialize");
    s.levels_[h].resize(static_cast<std::size_t>(n));
    for (double& v : s.levels_[h]) v = get_f64(c);
    const std::uint8_t parity = c.u8();
    if (parity > 1) malformed("QuantileSketch::deserialize");
    s.parity_[h] = parity;
  }
  if (!c.ok) malformed("QuantileSketch::deserialize");
  advance(bytes, c);
  return s;
}

void CountMinSketch::serialize(std::vector<std::uint8_t>& out) const {
  wire::put_varint(out, width_);
  wire::put_varint(out, depth_);
  wire::put_varint(out, seed_);
  wire::put_varint(out, total_);
  for (const std::uint64_t v : counters_) wire::put_varint(out, v);
}

CountMinSketch CountMinSketch::deserialize(
    std::span<const std::uint8_t>& bytes) {
  wire::Cursor c{bytes.data(), bytes.data() + bytes.size()};
  const std::uint64_t width = c.varint();
  const std::uint64_t depth = c.varint();
  if (!c.ok || width < 2 || depth < 1 || width * depth > (1u << 26))
    malformed("CountMinSketch::deserialize");
  CountMinSketch s(static_cast<std::size_t>(width),
                   static_cast<std::size_t>(depth));
  s.seed_ = c.varint();
  s.total_ = c.varint();
  for (std::uint64_t& v : s.counters_) v = c.varint();
  if (!c.ok) malformed("CountMinSketch::deserialize");
  advance(bytes, c);
  return s;
}

void LogHistogram::serialize(std::vector<std::uint8_t>& out) const {
  put_f64(out, min_value_);
  put_f64(out, bins_per_octave_);
  wire::put_varint(out, counts_.size());
  for (const double v : counts_) put_f64(out, v);
  put_f64(out, total_);
}

LogHistogram LogHistogram::deserialize(std::span<const std::uint8_t>& bytes) {
  wire::Cursor c{bytes.data(), bytes.data() + bytes.size()};
  const double min_value = get_f64(c);
  const double bins_per_octave = get_f64(c);
  const std::uint64_t bins = c.varint();
  if (!c.ok || !(min_value > 0) || !(bins_per_octave > 0) || bins < 2 ||
      bins > (1u << 24))
    malformed("LogHistogram::deserialize");
  LogHistogram h(min_value, 1, static_cast<std::size_t>(bins));
  h.bins_per_octave_ = bins_per_octave;
  for (double& v : h.counts_) v = get_f64(c);
  h.total_ = get_f64(c);
  if (!c.ok) malformed("LogHistogram::deserialize");
  advance(bytes, c);
  return h;
}

void BinnedLorenz::serialize(std::vector<std::uint8_t>& out) const {
  hist_.serialize(out);
  for (const double v : sums_) put_f64(out, v);  // count == hist_.bins()
  wire::put_varint(out, zeros_);
  wire::put_varint(out, count_);
  put_f64(out, total_);
}

BinnedLorenz BinnedLorenz::deserialize(std::span<const std::uint8_t>& bytes) {
  BinnedLorenz s;
  s.hist_ = LogHistogram::deserialize(bytes);
  wire::Cursor c{bytes.data(), bytes.data() + bytes.size()};
  s.sums_.assign(s.hist_.bins(), 0.0);
  for (double& v : s.sums_) v = get_f64(c);
  s.zeros_ = c.varint();
  s.count_ = c.varint();
  s.total_ = get_f64(c);
  if (!c.ok) malformed("BinnedLorenz::deserialize");
  advance(bytes, c);
  return s;
}

}  // namespace u1
