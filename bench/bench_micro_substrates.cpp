// Micro-benchmarks of the statistical/utility substrates (google-benchmark).
#include <benchmark/benchmark.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "stats/acf.hpp"
#include "stats/ecdf.hpp"
#include "stats/gini.hpp"
#include "stats/powerlaw.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"
#include "util/sha1.hpp"
#include "util/uuid.hpp"

namespace {

using namespace u1;

void BM_Sha1(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::of(payload));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_ParetoSample(benchmark::State& state) {
  Rng rng(2);
  ParetoDist d(1.5, 40.0);
  for (auto _ : state) benchmark::DoNotOptimize(d.sample(rng));
}
BENCHMARK(BM_ParetoSample);

void BM_UuidV4(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(Uuid::v4(rng));
}
BENCHMARK(BM_UuidV4);

void BM_EcdfConstruct(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> sample;
  for (int i = 0; i < state.range(0); ++i) sample.push_back(rng.uniform());
  for (auto _ : state) {
    std::vector<double> copy = sample;
    Ecdf e(std::move(copy));
    benchmark::DoNotOptimize(e.quantile(0.99));
  }
}
BENCHMARK(BM_EcdfConstruct)->Arg(1000)->Arg(100000);

void BM_Gini(benchmark::State& state) {
  Rng rng(5);
  ParetoDist d(1.2, 1.0);
  std::vector<double> sample;
  for (int i = 0; i < state.range(0); ++i) sample.push_back(d.sample(rng));
  for (auto _ : state) benchmark::DoNotOptimize(gini(sample));
}
BENCHMARK(BM_Gini)->Arg(10000);

void BM_Autocorrelation(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> series;
  for (int i = 0; i < 720; ++i) series.push_back(rng.uniform());
  for (auto _ : state)
    benchmark::DoNotOptimize(autocorrelation(series, 200));
}
BENCHMARK(BM_Autocorrelation);

void BM_PowerLawFit(benchmark::State& state) {
  Rng rng(7);
  ParetoDist d(1.54, 41.0);
  std::vector<double> sample;
  for (int i = 0; i < state.range(0); ++i) sample.push_back(d.sample(rng));
  for (auto _ : state) benchmark::DoNotOptimize(fit_power_law(sample));
}
BENCHMARK(BM_PowerLawFit)->Arg(20000);

void BM_EventQueue(benchmark::State& state) {
  const QueueImpl impl = state.range(0) == 0 ? QueueImpl::kBinaryHeap
                                             : QueueImpl::kCalendar;
  for (auto _ : state) {
    EventQueue<int> q(impl);
    Rng rng(8);
    for (int i = 0; i < 10000; ++i)
      q.push(static_cast<SimTime>(rng.below(1000000)), i);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueue)->Arg(0)->ArgName("heap");
BENCHMARK(BM_EventQueue)->Arg(1)->ArgName("calendar");

void BM_EventQueueHold(benchmark::State& state) {
  // The classic "hold" model — a steady-state queue where each pop
  // schedules a successor — is the simulator's actual hot-loop shape
  // (agents re-arm their next wake-up on every event).
  const QueueImpl impl = state.range(0) == 0 ? QueueImpl::kBinaryHeap
                                             : QueueImpl::kCalendar;
  EventQueue<int> q(impl);
  Rng rng(9);
  for (int i = 0; i < 4096; ++i)
    q.push(static_cast<SimTime>(rng.below(kHour)), i);
  for (auto _ : state) {
    auto ev = q.pop();
    q.push(ev.t + static_cast<SimTime>(rng.below(kMinute)) + 1,
           ev.payload);
    benchmark::DoNotOptimize(ev);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueHold)->Arg(0)->ArgName("heap");
BENCHMARK(BM_EventQueueHold)->Arg(1)->ArgName("calendar");

void BM_TraceRecordCsvRoundTrip(benchmark::State& state) {
  Rng rng(9);
  TraceRecord r;
  r.t = kHour;
  r.type = RecordType::kStorageDone;
  r.api_op = ApiOp::kPutContent;
  r.node = Uuid::v4(rng);
  r.volume = Uuid::v4(rng);
  r.content = Sha1::of("content");
  r.size_bytes = 123456;
  r.set_extension("mp3");
  for (auto _ : state) {
    const auto fields = r.to_csv();
    benchmark::DoNotOptimize(TraceRecord::from_csv(fields));
  }
}
BENCHMARK(BM_TraceRecordCsvRoundTrip);

void BM_TraceRecordAppendCsvRow(benchmark::State& state) {
  // The flush hot path: one reused buffer, no per-field strings.
  Rng rng(9);
  TraceRecord r;
  r.t = kHour;
  r.type = RecordType::kStorageDone;
  r.api_op = ApiOp::kPutContent;
  r.node = Uuid::v4(rng);
  r.volume = Uuid::v4(rng);
  r.content = Sha1::of("content");
  r.size_bytes = 123456;
  r.set_extension("mp3");
  std::string row;
  for (auto _ : state) {
    row.clear();
    r.append_csv_row(row);
    benchmark::DoNotOptimize(row);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceRecordAppendCsvRow);

}  // namespace

BENCHMARK_MAIN();
