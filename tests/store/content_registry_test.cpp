#include "store/content_registry.hpp"

#include <gtest/gtest.h>

#include "util/sha1.hpp"

namespace u1 {
namespace {

ContentId cid(const char* s) { return Sha1::of(s); }

TEST(ContentRegistry, InsertAndLookup) {
  ContentRegistry reg;
  EXPECT_TRUE(reg.insert(cid("a"), 100, "k/a"));
  const auto hit = reg.lookup(cid("a"), 100);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size_bytes, 100u);
  EXPECT_EQ(hit->s3_key, "k/a");
}

TEST(ContentRegistry, LookupRequiresMatchingSize) {
  ContentRegistry reg;
  reg.insert(cid("a"), 100, "k/a");
  EXPECT_FALSE(reg.lookup(cid("a"), 101).has_value());
  EXPECT_FALSE(reg.lookup(cid("b"), 100).has_value());
}

TEST(ContentRegistry, DoubleInsertReturnsFalse) {
  ContentRegistry reg;
  EXPECT_TRUE(reg.insert(cid("a"), 100, "k/a"));
  EXPECT_FALSE(reg.insert(cid("a"), 100, "k/other"));
  EXPECT_EQ(reg.unique_contents(), 1u);
  EXPECT_EQ(reg.unique_bytes(), 100u);
}

TEST(ContentRegistry, LinkUnlinkRefcounting) {
  ContentRegistry reg;
  reg.insert(cid("a"), 50, "k/a");
  reg.link(cid("a"));
  reg.link(cid("a"));
  EXPECT_EQ(reg.logical_bytes(), 100u);
  EXPECT_FALSE(reg.unlink(cid("a")).has_value());  // 1 ref remains
  const auto dead = reg.unlink(cid("a"));
  ASSERT_TRUE(dead.has_value());  // dropped to zero
  EXPECT_EQ(dead->s3_key, "k/a");
  EXPECT_EQ(reg.logical_bytes(), 0u);
}

TEST(ContentRegistry, UnlinkBelowZeroThrows) {
  ContentRegistry reg;
  reg.insert(cid("a"), 50, "k/a");
  EXPECT_THROW(reg.unlink(cid("a")), std::logic_error);
}

TEST(ContentRegistry, UnknownContentThrows) {
  ContentRegistry reg;
  EXPECT_THROW(reg.link(cid("missing")), std::out_of_range);
  EXPECT_THROW(reg.unlink(cid("missing")), std::out_of_range);
  EXPECT_THROW(reg.erase(cid("missing")), std::out_of_range);
}

TEST(ContentRegistry, EraseRequiresZeroRefcount) {
  ContentRegistry reg;
  reg.insert(cid("a"), 50, "k/a");
  reg.link(cid("a"));
  EXPECT_THROW(reg.erase(cid("a")), std::logic_error);
  reg.unlink(cid("a"));
  reg.erase(cid("a"));
  EXPECT_EQ(reg.unique_contents(), 0u);
  EXPECT_EQ(reg.unique_bytes(), 0u);
}

TEST(ContentRegistry, DedupRatioMatchesDefinition) {
  // dr = 1 - D_unique / D_total. Three logical copies of one 100-byte
  // blob plus one unique 100-byte blob: D_unique=200, D_total=400.
  ContentRegistry reg;
  reg.insert(cid("popular"), 100, "k/p");
  reg.link(cid("popular"));
  reg.link(cid("popular"));
  reg.link(cid("popular"));
  reg.insert(cid("unique"), 100, "k/u");
  reg.link(cid("unique"));
  EXPECT_DOUBLE_EQ(reg.dedup_ratio(), 0.5);
}

TEST(ContentRegistry, EmptyRegistryRatioZero) {
  ContentRegistry reg;
  EXPECT_DOUBLE_EQ(reg.dedup_ratio(), 0.0);
}

TEST(ContentRegistry, PaperLikeDedupRatio) {
  // Build a population with dr ≈ 0.171 (the paper's measured ratio):
  // 829 unique 1KB blobs with one link each + enough extra links.
  ContentRegistry reg;
  for (int i = 0; i < 829; ++i) {
    const auto id = cid(("blob" + std::to_string(i)).c_str());
    reg.insert(id, 1024, "k");
    reg.link(id);
  }
  // Add 171 duplicate links spread over the first blobs.
  for (int i = 0; i < 171; ++i) {
    reg.link(cid(("blob" + std::to_string(i % 829)).c_str()));
  }
  EXPECT_NEAR(reg.dedup_ratio(), 0.171, 1e-9);
}

}  // namespace
}  // namespace u1
