#include "analysis/trace_summary.hpp"

namespace u1 {

void TraceSummaryAnalyzer::append(const TraceRecord& r) {
  if (r.t < 0) return;
  if (end_ > 0 && r.t >= end_) return;
  ++records_;
  if (!any_) {
    first_ = last_ = r.t;
    any_ = true;
  } else {
    if (r.t < first_) first_ = r.t;
    if (r.t > last_) last_ = r.t;
  }
  if (r.user.valid()) users_.insert(r.user);
  if (r.type == RecordType::kSession &&
      r.session_event == SessionEvent::kOpen)
    ++sessions_;
  if (r.type == RecordType::kStorageDone && !r.failed) {
    if (r.api_op == ApiOp::kPutContent) {
      ++transfer_ops_;
      files_.insert(r.node);
      upload_bytes_ += r.transferred_bytes;
    } else if (r.api_op == ApiOp::kGetContent) {
      ++transfer_ops_;
      download_bytes_ += r.transferred_bytes;
    }
  }
}

TraceSummaryAnalyzer::Summary TraceSummaryAnalyzer::summary() const {
  Summary s;
  if (any_) s.days = day_index(last_) - day_index(first_) + 1;
  s.unique_users = users_.size();
  s.unique_files = files_.size();
  s.sessions = sessions_;
  s.transfer_ops = transfer_ops_;
  s.upload_bytes = upload_bytes_;
  s.download_bytes = download_bytes_;
  s.records = records_;
  return s;
}

}  // namespace u1
