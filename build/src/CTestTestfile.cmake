# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("stats")
subdirs("proto")
subdirs("store")
subdirs("cloudstore")
subdirs("auth")
subdirs("mq")
subdirs("trace")
subdirs("server")
subdirs("workload")
subdirs("sim")
subdirs("analysis")
subdirs("improve")
