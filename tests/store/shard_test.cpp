#include "store/shard.hpp"

#include <gtest/gtest.h>

#include "util/sha1.hpp"

namespace u1 {
namespace {

class ShardTest : public ::testing::Test {
 protected:
  ShardTest() : shard_(ShardId{1}), rng_(99) {}

  Volume& add_user(std::uint64_t id) {
    return shard_.create_user(UserId{id}, kHour, rng_);
  }

  Shard shard_;
  Rng rng_;
};

TEST_F(ShardTest, CreateUserMakesRootVolume) {
  const Volume& v = add_user(1);
  EXPECT_EQ(v.kind, VolumeKind::kRoot);
  EXPECT_EQ(v.owner, (UserId{1}));
  EXPECT_FALSE(v.root_dir.is_nil());
  EXPECT_TRUE(shard_.has_user(UserId{1}));
  const Node* root = shard_.find_node(v.root_dir);
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->is_dir());
  EXPECT_TRUE(root->parent.is_nil());
}

TEST_F(ShardTest, DuplicateUserThrows) {
  add_user(1);
  EXPECT_THROW(add_user(1), std::logic_error);
}

TEST_F(ShardTest, UnknownUserQueries) {
  EXPECT_FALSE(shard_.has_user(UserId{42}));
  EXPECT_FALSE(shard_.get_user(UserId{42}).has_value());
  EXPECT_THROW(shard_.root_volume(UserId{42}), std::out_of_range);
  EXPECT_THROW(shard_.create_udf(UserId{42}, 0, rng_), std::out_of_range);
}

TEST_F(ShardTest, MakeNodesAndChildren) {
  const Volume& v = add_user(1);
  Node& dir = shard_.make_node(UserId{1}, v.id, v.root_dir,
                               NodeKind::kDirectory, "d1", "", kHour, rng_);
  Node& file = shard_.make_node(UserId{1}, v.id, dir.id, NodeKind::kFile,
                                "f1", "jpg", kHour, rng_);
  EXPECT_EQ(file.extension, "jpg");
  EXPECT_EQ(file.parent, dir.id);
  const auto kids = shard_.children_of(dir.id);
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(kids[0], file.id);
  EXPECT_EQ(shard_.node_count(), 3u);  // root dir + d1 + f1
}

TEST_F(ShardTest, MakeNodeValidatesParent) {
  const Volume& v = add_user(1);
  Node& file = shard_.make_node(UserId{1}, v.id, v.root_dir, NodeKind::kFile,
                                "f", "txt", 0, rng_);
  // Parent must exist, be a directory and live in the same volume.
  EXPECT_THROW(shard_.make_node(UserId{1}, v.id, Uuid::v4(rng_),
                                NodeKind::kFile, "x", "", 0, rng_),
               std::out_of_range);
  EXPECT_THROW(shard_.make_node(UserId{1}, v.id, file.id, NodeKind::kFile,
                                "x", "", 0, rng_),
               std::invalid_argument);
  const Volume& udf = shard_.create_udf(UserId{1}, 0, rng_);
  EXPECT_THROW(shard_.make_node(UserId{1}, udf.id, v.root_dir,
                                NodeKind::kFile, "x", "", 0, rng_),
               std::invalid_argument);
}

TEST_F(ShardTest, GenerationsAdvancePerVolume) {
  const Volume& v = add_user(1);
  const Node& a = shard_.make_node(UserId{1}, v.id, v.root_dir,
                                   NodeKind::kFile, "a", "", 0, rng_);
  const Node& b = shard_.make_node(UserId{1}, v.id, v.root_dir,
                                   NodeKind::kFile, "b", "", 0, rng_);
  EXPECT_EQ(a.generation, 1u);
  EXPECT_EQ(b.generation, 2u);
  EXPECT_EQ(shard_.find_volume(v.id)->generation, 2u);
}

TEST_F(ShardTest, GetDeltaReturnsOnlyNewer) {
  const Volume& v = add_user(1);
  shard_.make_node(UserId{1}, v.id, v.root_dir, NodeKind::kFile, "a", "", 0,
                   rng_);
  const std::uint64_t checkpoint = shard_.find_volume(v.id)->generation;
  shard_.make_node(UserId{1}, v.id, v.root_dir, NodeKind::kFile, "b", "", 0,
                   rng_);
  const auto delta = shard_.get_delta(v.id, checkpoint);
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].name_hash, "b");
  // From scratch returns everything, including the root dir.
  EXPECT_EQ(shard_.get_from_scratch(v.id).size(), 3u);
}

TEST_F(ShardTest, SetNodeContentReturnsPrevious) {
  const Volume& v = add_user(1);
  Node& f = shard_.make_node(UserId{1}, v.id, v.root_dir, NodeKind::kFile,
                             "f", "", 0, rng_);
  const ContentId c1 = Sha1::of("v1");
  const ContentId c2 = Sha1::of("v2");
  EXPECT_EQ(shard_.set_node_content(f.id, c1, 10), ContentId{});
  EXPECT_EQ(shard_.set_node_content(f.id, c2, 20), c1);
  EXPECT_EQ(shard_.find_node(f.id)->size_bytes, 20u);
}

TEST_F(ShardTest, SetContentOnDirectoryThrows) {
  const Volume& v = add_user(1);
  EXPECT_THROW(shard_.set_node_content(v.root_dir, Sha1::of("x"), 1),
               std::invalid_argument);
}

TEST_F(ShardTest, UnlinkFileReleasesContent) {
  const Volume& v = add_user(1);
  Node& f = shard_.make_node(UserId{1}, v.id, v.root_dir, NodeKind::kFile,
                             "f", "", 0, rng_);
  shard_.set_node_content(f.id, Sha1::of("data"), 10);
  const auto released = shard_.unlink_node(f.id);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0], Sha1::of("data"));
  EXPECT_EQ(shard_.find_node(f.id), nullptr);
  EXPECT_TRUE(shard_.children_of(v.root_dir).empty());
}

TEST_F(ShardTest, UnlinkDirectoryCascades) {
  const Volume& v = add_user(1);
  Node& dir = shard_.make_node(UserId{1}, v.id, v.root_dir,
                               NodeKind::kDirectory, "d", "", 0, rng_);
  Node& sub = shard_.make_node(UserId{1}, v.id, dir.id, NodeKind::kDirectory,
                               "s", "", 0, rng_);
  Node& f1 = shard_.make_node(UserId{1}, v.id, dir.id, NodeKind::kFile, "f1",
                              "", 0, rng_);
  Node& f2 = shard_.make_node(UserId{1}, v.id, sub.id, NodeKind::kFile, "f2",
                              "", 0, rng_);
  shard_.set_node_content(f1.id, Sha1::of("1"), 1);
  shard_.set_node_content(f2.id, Sha1::of("2"), 2);
  const auto released = shard_.unlink_node(dir.id);
  EXPECT_EQ(released.size(), 2u);
  EXPECT_EQ(shard_.node_count(), 1u);  // only the volume root remains
}

TEST_F(ShardTest, UnlinkRootForbidden) {
  const Volume& v = add_user(1);
  EXPECT_THROW(shard_.unlink_node(v.root_dir), std::invalid_argument);
  EXPECT_THROW(shard_.unlink_node(Uuid::v4(rng_)), std::out_of_range);
}

TEST_F(ShardTest, MoveNodeReparents) {
  const Volume& v = add_user(1);
  Node& d1 = shard_.make_node(UserId{1}, v.id, v.root_dir,
                              NodeKind::kDirectory, "d1", "", 0, rng_);
  Node& d2 = shard_.make_node(UserId{1}, v.id, v.root_dir,
                              NodeKind::kDirectory, "d2", "", 0, rng_);
  Node& f = shard_.make_node(UserId{1}, v.id, d1.id, NodeKind::kFile, "f",
                             "", 0, rng_);
  shard_.move_node(f.id, d2.id);
  EXPECT_EQ(shard_.find_node(f.id)->parent, d2.id);
  EXPECT_TRUE(shard_.children_of(d1.id).empty());
  ASSERT_EQ(shard_.children_of(d2.id).size(), 1u);
}

TEST_F(ShardTest, MoveRejectsCycles) {
  const Volume& v = add_user(1);
  Node& d1 = shard_.make_node(UserId{1}, v.id, v.root_dir,
                              NodeKind::kDirectory, "d1", "", 0, rng_);
  Node& d2 = shard_.make_node(UserId{1}, v.id, d1.id, NodeKind::kDirectory,
                              "d2", "", 0, rng_);
  EXPECT_THROW(shard_.move_node(d1.id, d1.id), std::invalid_argument);
  EXPECT_THROW(shard_.move_node(d1.id, d2.id), std::invalid_argument);
}

TEST_F(ShardTest, MoveRejectsCrossVolumeAndFileParent) {
  const Volume& v = add_user(1);
  const Volume& udf = shard_.create_udf(UserId{1}, 0, rng_);
  Node& f = shard_.make_node(UserId{1}, v.id, v.root_dir, NodeKind::kFile,
                             "f", "", 0, rng_);
  Node& g = shard_.make_node(UserId{1}, v.id, v.root_dir, NodeKind::kFile,
                             "g", "", 0, rng_);
  EXPECT_THROW(shard_.move_node(f.id, udf.root_dir), std::invalid_argument);
  EXPECT_THROW(shard_.move_node(f.id, g.id), std::invalid_argument);
}

TEST_F(ShardTest, DeleteVolumeCascadesAndForbidsRoot) {
  const Volume& root = add_user(1);
  Volume& udf = shard_.create_udf(UserId{1}, 0, rng_);
  Node& f = shard_.make_node(UserId{1}, udf.id, udf.root_dir, NodeKind::kFile,
                             "f", "", 0, rng_);
  shard_.set_node_content(f.id, Sha1::of("x"), 5);
  const auto released = shard_.delete_volume(udf.id);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(shard_.find_volume(udf.id), nullptr);
  EXPECT_EQ(shard_.list_volumes(UserId{1}).size(), 1u);
  EXPECT_THROW(shard_.delete_volume(root.id), std::invalid_argument);
}

TEST_F(ShardTest, UploadJobLifecycle) {
  add_user(1);
  UploadJob& job = shard_.make_uploadjob(UserId{1}, Uuid::v4(rng_),
                                         Sha1::of("c"), 10 << 20, kHour, rng_);
  EXPECT_EQ(job.declared_size, 10u << 20);
  ASSERT_NE(shard_.find_uploadjob(job.id), nullptr);
  const UploadJobId id = job.id;
  shard_.delete_uploadjob(id);
  EXPECT_EQ(shard_.find_uploadjob(id), nullptr);
  EXPECT_THROW(shard_.delete_uploadjob(id), std::out_of_range);
}

TEST_F(ShardTest, StaleUploadJobs) {
  add_user(1);
  UploadJob& young = shard_.make_uploadjob(UserId{1}, Uuid::v4(rng_),
                                           Sha1::of("y"), 1, 10 * kDay, rng_);
  UploadJob& old = shard_.make_uploadjob(UserId{1}, Uuid::v4(rng_),
                                         Sha1::of("o"), 1, kDay, rng_);
  (void)young;
  const auto stale = shard_.stale_uploadjobs(8 * kDay);  // 1-week GC cutoff
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], old.id);
}

TEST_F(ShardTest, ShareGrants) {
  add_user(1);
  const Volume& v = shard_.root_volume(UserId{1});
  shard_.add_share_grant(ShareGrant{v.id, UserId{1}, UserId{2}, kHour});
  const auto grants = shard_.share_grants(UserId{2});
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_EQ(grants[0].shared_by, (UserId{1}));
  shard_.remove_grants_for_volume(v.id);
  EXPECT_TRUE(shard_.share_grants(UserId{2}).empty());
}

}  // namespace
}  // namespace u1
