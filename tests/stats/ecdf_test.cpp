#include "stats/ecdf.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace u1 {
namespace {

TEST(Ecdf, RejectsEmpty) {
  EXPECT_THROW(Ecdf(std::vector<double>{}), std::invalid_argument);
}

TEST(Ecdf, AtStepFunction) {
  Ecdf e({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(e.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(e.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(e.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(e.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(e.at(100.0), 1.0);
}

TEST(Ecdf, HandlesDuplicates) {
  Ecdf e({5.0, 5.0, 5.0, 10.0});
  EXPECT_DOUBLE_EQ(e.at(5.0), 0.75);
  EXPECT_DOUBLE_EQ(e.at(9.9), 0.75);
  EXPECT_DOUBLE_EQ(e.at(10.0), 1.0);
}

TEST(Ecdf, QuantileInterpolates) {
  Ecdf e({0.0, 10.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(e.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(e.quantile(1.0), 10.0);
}

TEST(Ecdf, QuantileRejectsOutOfRange) {
  Ecdf e({1.0, 2.0});
  EXPECT_THROW(e.quantile(-0.1), std::domain_error);
  EXPECT_THROW(e.quantile(1.1), std::domain_error);
}

TEST(Ecdf, SingleElement) {
  Ecdf e({7.0});
  EXPECT_DOUBLE_EQ(e.quantile(0.3), 7.0);
  EXPECT_DOUBLE_EQ(e.at(6.9), 0.0);
  EXPECT_DOUBLE_EQ(e.at(7.0), 1.0);
}

TEST(Ecdf, MedianOfUniformSampleNearHalf) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.uniform());
  Ecdf e(std::move(xs));
  EXPECT_NEAR(e.quantile(0.5), 0.5, 0.01);
  EXPECT_NEAR(e.at(0.25), 0.25, 0.01);
}

TEST(Ecdf, EvaluateMatchesAt) {
  Ecdf e({1, 2, 3, 4, 5});
  const std::vector<double> xs = {0, 2.5, 5, 9};
  const auto ys = e.evaluate(xs);
  ASSERT_EQ(ys.size(), 4u);
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_DOUBLE_EQ(ys[i], e.at(xs[i]));
}

TEST(Ecdf, CcdfPointsAreComplementary) {
  Ecdf e({1.0, 1.0, 2.0, 3.0});
  const auto pts = e.ccdf_points();
  ASSERT_EQ(pts.size(), 3u);  // distinct values
  EXPECT_DOUBLE_EQ(pts[0].first, 1.0);
  EXPECT_DOUBLE_EQ(pts[0].second, 0.5);  // two of four strictly above 1
  EXPECT_DOUBLE_EQ(pts[2].first, 3.0);
  EXPECT_DOUBLE_EQ(pts[2].second, 0.0);
}

TEST(LogSpace, EndpointsAndMonotone) {
  const auto g = log_space(0.001, 100.0, 26);
  ASSERT_EQ(g.size(), 26u);
  EXPECT_NEAR(g.front(), 0.001, 1e-9);
  EXPECT_NEAR(g.back(), 100.0, 1e-9);
  for (std::size_t i = 1; i < g.size(); ++i) EXPECT_GT(g[i], g[i - 1]);
}

TEST(LogSpace, RejectsBadArgs) {
  EXPECT_THROW(log_space(0.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(log_space(1.0, 1.0, 5), std::invalid_argument);
  EXPECT_THROW(log_space(1.0, 2.0, 1), std::invalid_argument);
}

TEST(LinSpace, EndpointsAndSpacing) {
  const auto g = lin_space(0.0, 10.0, 11);
  ASSERT_EQ(g.size(), 11u);
  EXPECT_DOUBLE_EQ(g[0], 0.0);
  EXPECT_DOUBLE_EQ(g[5], 5.0);
  EXPECT_DOUBLE_EQ(g[10], 10.0);
}

}  // namespace
}  // namespace u1
