#include "trace/logfile.hpp"

#include <algorithm>

#include "util/csv.hpp"

namespace u1 {

LogfileWriter::LogfileWriter(std::filesystem::path directory)
    : dir_(std::move(directory)) {
  std::filesystem::create_directories(dir_);
}

LogfileWriter::~LogfileWriter() { close(); }

void LogfileWriter::append(const TraceRecord& record) {
  const std::string name = record.logname();
  auto it = files_.find(name);
  if (it == files_.end()) {
    auto stream = std::make_unique<std::ofstream>(dir_ / (name + ".csv"));
    if (!stream->is_open())
      throw std::runtime_error("LogfileWriter: cannot open " + name);
    CsvWriter header(*stream);
    header.write_row(TraceRecord::csv_header());
    it = files_.emplace(name, std::move(stream)).first;
  }
  CsvWriter writer(*it->second);
  writer.write_row(record.to_csv());
}

void LogfileWriter::close() {
  for (auto& [name, stream] : files_) stream->flush();
  files_.clear();
}

ReadStats read_logfile(const std::filesystem::path& file,
                       std::vector<TraceRecord>& out) {
  ReadStats stats;
  std::ifstream in(file);
  if (!in.is_open())
    throw std::runtime_error("read_logfile: cannot open " + file.string());
  stats.files = 1;
  CsvReader reader(in);
  std::vector<std::string> fields;
  bool first = true;
  while (reader.next(fields)) {
    ++stats.rows;
    if (first) {
      first = false;
      if (!fields.empty() && fields[0] == "t_us") continue;  // header
    }
    if (auto rec = TraceRecord::from_csv(fields)) {
      out.push_back(std::move(*rec));
      ++stats.parsed;
    } else {
      ++stats.malformed;
    }
  }
  stats.malformed += reader.error_count();
  stats.rows += reader.error_count();
  return stats;
}

ReadStats read_logfiles(const std::filesystem::path& directory,
                        TraceSink& sink) {
  ReadStats stats;
  std::vector<TraceRecord> all;
  for (const auto& entry : std::filesystem::directory_iterator(directory)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("production-")) continue;
    const ReadStats one = read_logfile(entry.path(), all);
    stats.rows += one.rows;
    stats.parsed += one.parsed;
    stats.malformed += one.malformed;
    stats.files += 1;
  }
  // Stable sort keeps intra-process (already causal) order for ties.
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.t < b.t;
                   });
  for (const TraceRecord& r : all) sink.append(r);
  return stats;
}

}  // namespace u1
