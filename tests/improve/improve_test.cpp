#include <gtest/gtest.h>

#include "improve/anomaly_guard.hpp"
#include "improve/content_cache.hpp"
#include "improve/push_pull.hpp"
#include "improve/warm_tier.hpp"
#include "util/sha1.hpp"

namespace u1 {
namespace {

ContentId cid(int i) { return Sha1::of("blob" + std::to_string(i)); }

// --- ContentCache -----------------------------------------------------------

TEST(ContentCache, MissThenHit) {
  ContentCache cache(1 << 20);
  EXPECT_FALSE(cache.access(cid(1), 1000));
  EXPECT_TRUE(cache.access(cid(1), 1000));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
  EXPECT_EQ(cache.hit_bytes(), 1000u);
}

TEST(ContentCache, EvictsLruByBytes) {
  ContentCache cache(3000);
  cache.access(cid(1), 1500);
  cache.access(cid(2), 1500);
  (void)cache.access(cid(1), 1500);  // touch 1
  cache.access(cid(3), 1500);        // evicts 2
  EXPECT_TRUE(cache.access(cid(1), 1500));
  EXPECT_FALSE(cache.access(cid(2), 1500));
  EXPECT_LE(cache.used_bytes(), 3000u);
}

TEST(ContentCache, NeverAdmitsWhales) {
  ContentCache cache(1000);
  EXPECT_FALSE(cache.access(cid(1), 5000));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_FALSE(cache.access(cid(1), 5000));  // still a miss
}

TEST(ContentCache, InvalidateRemoves) {
  ContentCache cache(10000);
  cache.access(cid(1), 100);
  cache.invalidate(cid(1));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.access(cid(1), 100));
  cache.invalidate(cid(99));  // unknown: no-op
}

TEST(ContentCache, RejectsZeroCapacity) {
  EXPECT_THROW(ContentCache(0), std::invalid_argument);
}

// --- AnomalyGuard -----------------------------------------------------------

TraceRecord auth_request(SimTime t, std::uint64_t user) {
  TraceRecord r;
  r.t = t;
  r.type = RecordType::kSession;
  r.session_event = SessionEvent::kAuthRequest;
  r.user = UserId{user};
  r.session = SessionId{user * 1000 + static_cast<std::uint64_t>(t)};
  return r;
}

TEST(AnomalyGuard, StaysQuietOnBackgroundTraffic) {
  AnomalyGuard guard;
  Rng rng(1);
  // 12 hours of diffuse traffic from many users.
  for (SimTime t = 0; t < 12 * kHour; t += 20 * kSecond) {
    EXPECT_FALSE(guard.observe(auth_request(t, rng.below(500) + 1))
                     .has_value());
  }
  EXPECT_EQ(guard.alerts(), 0u);
}

TEST(AnomalyGuard, FlagsConcentratedSpike) {
  AnomalyGuard guard;
  Rng rng(2);
  SimTime t = 0;
  // Build the baseline: ~30 requests per 10-minute window.
  for (; t < 6 * kHour; t += 20 * kSecond)
    guard.observe(auth_request(t, rng.below(500) + 1));
  // Attack: one account floods 10x the rate. The alert may surface on
  // any observation (including a background request), so capture all.
  std::optional<UserId> flagged;
  for (int i = 0; i < 4000 && !flagged; ++i) {
    t += 2 * kSecond;
    // Background continues underneath.
    if (i % 10 == 0) {
      if (const auto f = guard.observe(auth_request(t, rng.below(500) + 1)))
        flagged = f;
    }
    if (const auto f = guard.observe(auth_request(t, 666))) flagged = f;
  }
  ASSERT_TRUE(flagged.has_value());
  EXPECT_EQ(*flagged, (UserId{666}));
  EXPECT_EQ(guard.alerts(), 1u);
}

TEST(AnomalyGuard, DiffuseSpikeIsNotBlamedOnAnyone) {
  // A legitimate flash crowd (e.g. a software release) raises the rate
  // but no single account concentrates it -> no purge recommendation.
  AnomalyGuard guard;
  Rng rng(3);
  SimTime t = 0;
  for (; t < 6 * kHour; t += 20 * kSecond)
    guard.observe(auth_request(t, rng.below(500) + 1));
  for (int i = 0; i < 4000; ++i) {
    t += 2 * kSecond;
    EXPECT_FALSE(
        guard.observe(auth_request(t, rng.below(5000) + 1)).has_value());
  }
}

TEST(AnomalyGuard, DebouncesRepeatedAlerts) {
  AnomalyGuard guard;
  Rng rng(4);
  SimTime t = 0;
  for (; t < 6 * kHour; t += 20 * kSecond)
    guard.observe(auth_request(t, rng.below(500) + 1));
  std::uint64_t alerts = 0;
  for (int i = 0; i < 6000; ++i) {
    t += 2 * kSecond;
    if (guard.observe(auth_request(t, 666)).has_value()) ++alerts;
  }
  EXPECT_EQ(alerts, guard.alerts());
  // The flood spans ~3.3 hours; debounce limits alerts to one per user
  // per hour.
  EXPECT_GE(alerts, 1u);
  EXPECT_LE(alerts, 4u);
}

TEST(AnomalyGuard, ValidatesConfig) {
  AnomalyGuardConfig cfg;
  cfg.rate_threshold = 1.0;
  EXPECT_THROW(AnomalyGuard{cfg}, std::invalid_argument);
  cfg = AnomalyGuardConfig{};
  cfg.concentration_threshold = 1.5;
  EXPECT_THROW(AnomalyGuard{cfg}, std::invalid_argument);
}

// --- PushPullPolicy ----------------------------------------------------------

TEST(PushPullPolicy, NewUsersGetPushGrace) {
  PushPullPolicy policy;
  EXPECT_EQ(policy.decide(UserId{1}), SessionMode::kPush);
}

TEST(PushPullPolicy, ColdUsersDemotedToPull) {
  PushPullPolicy policy;
  const UserId u{1};
  for (int i = 0; i < 5; ++i) policy.report_session(u, 0, kHour);
  EXPECT_EQ(policy.decide(u), SessionMode::kPull);
  EXPECT_GT(policy.saved_connection_hours(), 0.0);
}

TEST(PushPullPolicy, ActiveUsersKeepPush) {
  PushPullPolicy policy;
  const UserId u{2};
  for (int i = 0; i < 5; ++i) policy.report_session(u, 20, kHour);
  EXPECT_EQ(policy.decide(u), SessionMode::kPush);
  EXPECT_GT(policy.activity_estimate(u), 1.0);
}

TEST(PushPullPolicy, ReactivatedUserPromotedBack) {
  PushPullPolicy policy;
  const UserId u{3};
  for (int i = 0; i < 6; ++i) policy.report_session(u, 0, kHour);
  ASSERT_EQ(policy.decide(u), SessionMode::kPull);
  // A burst of activity pulls the EWMA back above the threshold.
  policy.report_session(u, 50, kHour);
  EXPECT_EQ(policy.decide(u), SessionMode::kPush);
  EXPECT_GE(policy.mispredicted_active(), 1u);
}

TEST(PushPullPolicy, AccountsSessions) {
  PushPullPolicy policy;
  const UserId cold{4}, hot{5};
  for (int i = 0; i < 6; ++i) {
    policy.report_session(cold, 0, 2 * kHour);
    policy.report_session(hot, 30, 2 * kHour);
  }
  EXPECT_GT(policy.pull_sessions(), 0u);
  EXPECT_GT(policy.push_sessions(), 0u);
}

TEST(PushPullPolicy, ValidatesConfig) {
  PushPullConfig cfg;
  cfg.alpha = 0;
  EXPECT_THROW(PushPullPolicy{cfg}, std::invalid_argument);
}

// --- WarmTierManager ----------------------------------------------------------

TEST(WarmTier, StoresHotAndDemotesIdle) {
  WarmTierManager tier;
  tier.on_store(cid(1), 1000, 0);
  tier.on_store(cid(2), 2000, 0);
  EXPECT_EQ(tier.tier_of(cid(1)), StorageTier::kHot);
  EXPECT_EQ(tier.hot_bytes(), 3000u);
  // Touch blob 2 so only blob 1 goes idle.
  tier.on_read(cid(2), 10 * kDay);
  EXPECT_EQ(tier.sweep(15 * kDay), 1u);
  EXPECT_EQ(tier.tier_of(cid(1)), StorageTier::kCold);
  EXPECT_EQ(tier.tier_of(cid(2)), StorageTier::kHot);
  EXPECT_EQ(tier.cold_bytes(), 1000u);
}

TEST(WarmTier, ColdReadPromotesWithPenalty) {
  WarmTierManager tier;
  tier.on_store(cid(1), 1000, 0);
  tier.sweep(20 * kDay);
  ASSERT_EQ(tier.tier_of(cid(1)), StorageTier::kCold);
  const SimTime penalty = tier.on_read(cid(1), 21 * kDay);
  EXPECT_GT(penalty, 0);
  EXPECT_EQ(tier.tier_of(cid(1)), StorageTier::kHot);
  EXPECT_EQ(tier.cold_reads(), 1u);
  // Hot read afterwards has no penalty.
  EXPECT_EQ(tier.on_read(cid(1), 22 * kDay), 0);
}

TEST(WarmTier, BillReflectsTiering) {
  WarmTierManager tier;
  constexpr std::uint64_t GB = 1024ull * 1024 * 1024;
  tier.on_store(cid(1), 100 * GB, 0);
  tier.on_store(cid(2), 100 * GB, 0);
  tier.on_read(cid(2), 13 * kDay);
  tier.sweep(15 * kDay);  // blob 1 demoted
  // 100GB hot @0.03 + 100GB cold @0.01 = 4$/month vs 6$ all-hot.
  EXPECT_NEAR(tier.monthly_bill_usd(), 4.0, 0.01);
  EXPECT_NEAR(tier.monthly_bill_all_hot_usd(), 6.0, 0.01);
}

TEST(WarmTier, DeleteAndOverwriteKeepBooks) {
  WarmTierManager tier;
  tier.on_store(cid(1), 500, 0);
  tier.on_store(cid(1), 900, 1);  // overwrite
  EXPECT_EQ(tier.hot_bytes(), 900u);
  tier.on_delete(cid(1));
  EXPECT_EQ(tier.hot_bytes(), 0u);
  EXPECT_EQ(tier.tracked(), 0u);
  tier.on_delete(cid(1));  // idempotent
  EXPECT_THROW(tier.on_read(cid(1), 2), std::out_of_range);
}

TEST(WarmTier, ValidatesConfig) {
  WarmTierConfig cfg;
  cfg.demote_after = 0;
  EXPECT_THROW(WarmTierManager{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace u1
