#include "workload/diurnal.hpp"

#include <cmath>
#include <stdexcept>

namespace u1 {

DiurnalModel::DiurnalModel(const DiurnalParams& params) : params_(params) {
  if (params.night_floor <= 0 || params.night_floor > 1 ||
      params.weekend_factor <= 0 || params.monday_factor <= 0 ||
      params.morning_download_boost < 0 ||
      params.morning_download_boost > 1)
    throw std::invalid_argument("DiurnalParams: invalid");
}

double DiurnalModel::intensity(SimTime t) const noexcept {
  const double h = frac_hour_of_day(t);
  // Smooth day curve: cosine valley at ~4am, peak at ~14:00. Scaled into
  // [night_floor, 1].
  const double phase = (h - 14.0) / 24.0 * 2.0 * M_PI;
  const double wave = 0.5 * (1.0 + std::cos(phase));  // 1 at 14:00
  double v = params_.night_floor + (1.0 - params_.night_floor) * wave;
  const int wd = weekday(t);
  if (wd >= 5) {
    v *= params_.weekend_factor;
  } else if (wd == 0) {
    v *= params_.monday_factor;
  }
  return v;
}

double DiurnalModel::download_bias(SimTime t) const noexcept {
  const double h = frac_hour_of_day(t);
  if (h < 6.0 || h >= 15.0) return 0.0;
  // Linear decay from the 6am maximum to zero at 15:00.
  return params_.morning_download_boost * (15.0 - h) / 9.0;
}

SimTime DiurnalModel::next_arrival(SimTime now, double per_day,
                                   Rng& rng) const {
  if (per_day <= 0) return now + 365 * kDay;  // effectively never
  // Thinning with majorant rate = per_day * monday_factor.
  const double max_rate_per_us =
      per_day * params_.monday_factor / static_cast<double>(kDay);
  SimTime t = now;
  for (int guard = 0; guard < 100000; ++guard) {
    const double gap = -std::log(1.0 - rng.uniform()) / max_rate_per_us;
    t += static_cast<SimTime>(gap) + 1;
    if (rng.uniform() * params_.monday_factor <= intensity(t)) return t;
  }
  return t;
}

}  // namespace u1
