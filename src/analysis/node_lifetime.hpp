// Node lifetime analysis (paper §5.2, Fig. 3c): time from creation (Make)
// to deletion (Unlink / DeleteVolume), separately for files and
// directories. A directory unlink implicitly deletes its subtree and a
// volume delete removes every node it contains — both cascades are
// resolved here from the parent/volume fields of Make records, exactly as
// the paper's own analysis had to.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/sink.hpp"

namespace u1 {

class NodeLifetimeAnalyzer final : public TraceSink {
 public:
  void append(const TraceRecord& record) override;

  /// Lifetimes (seconds) of nodes created AND deleted inside the window.
  const std::vector<double>& file_lifetimes() const noexcept {
    return file_lifetimes_;
  }
  const std::vector<double>& dir_lifetimes() const noexcept {
    return dir_lifetimes_;
  }

  /// Fraction of created files/dirs deleted within `within` of creation
  /// (paper: 28.9% of files within a month, 17.1% within 8 hours).
  double file_deleted_fraction(SimTime within) const;
  double dir_deleted_fraction(SimTime within) const;

  std::uint64_t files_created() const noexcept { return files_created_; }
  std::uint64_t dirs_created() const noexcept { return dirs_created_; }

 private:
  struct Born {
    SimTime at = 0;
    NodeId parent;
    VolumeId volume;
    bool is_dir = false;
  };

  void kill_node(NodeId node, SimTime at);
  void kill_subtree(NodeId dir, SimTime at);

  std::unordered_map<NodeId, Born> alive_;
  std::unordered_map<NodeId, std::vector<NodeId>> children_;
  std::unordered_map<VolumeId, std::vector<NodeId>> by_volume_;
  std::vector<double> file_lifetimes_;
  std::vector<double> dir_lifetimes_;
  std::uint64_t files_created_ = 0;
  std::uint64_t dirs_created_ = 0;
};

}  // namespace u1
