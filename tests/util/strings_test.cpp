#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace u1 {
namespace {

TEST(Split, BasicAndEmptyFields) {
  const auto f = split("a,b,,c", ',');
  ASSERT_EQ(f.size(), 4u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "");
  EXPECT_EQ(f[3], "c");
}

TEST(Split, NoDelimiterYieldsWhole) {
  const auto f = split("alone", ',');
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0], "alone");
}

TEST(Split, LeadingAndTrailingDelimiters) {
  const auto f = split(",x,", ',');
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "");
  EXPECT_EQ(f[1], "x");
  EXPECT_EQ(f[2], "");
}

TEST(Join, RoundTrip) {
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(Trim, StripsWhitespaceBothSides) {
  EXPECT_EQ(trim("  x y \t\n"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("nochange"), "nochange");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("production-whitecurrant-23", "production-"));
  EXPECT_FALSE(starts_with("prod", "production"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(ParseI64, StrictParsing) {
  EXPECT_EQ(parse_i64("42"), 42);
  EXPECT_EQ(parse_i64("-7"), -7);
  EXPECT_EQ(parse_i64("0"), 0);
  EXPECT_FALSE(parse_i64("42x").has_value());
  EXPECT_FALSE(parse_i64("").has_value());
  EXPECT_FALSE(parse_i64("4.2").has_value());
}

TEST(ParseDouble, StrictParsing) {
  EXPECT_DOUBLE_EQ(parse_double("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(parse_double("1e3").value(), 1000.0);
  EXPECT_FALSE(parse_double("x").has_value());
  EXPECT_FALSE(parse_double("1.5junk").has_value());
  EXPECT_FALSE(parse_double("").has_value());
}

TEST(FormatBytes, PicksUnit) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2048), "2.00 KB");
  EXPECT_EQ(format_bytes(1.5 * 1024 * 1024), "1.50 MB");
  EXPECT_EQ(format_bytes(3.0 * 1024 * 1024 * 1024), "3.00 GB");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("MiXeD.JPG"), "mixed.jpg");
  EXPECT_EQ(to_lower(""), "");
}

}  // namespace
}  // namespace u1
