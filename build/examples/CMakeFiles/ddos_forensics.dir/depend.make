# Empty dependencies file for ddos_forensics.
# This may be replaced when dependencies are built.
