# Empty compiler generated dependencies file for u1_proto.
# This may be replaced when dependencies are built.
