#include "stats/histogram.hpp"

#include <gtest/gtest.h>

namespace u1 {
namespace {

TEST(Histogram, BinPlacement) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);
  h.add(1.9);
  h.add(2.0);
  h.add(9.99);
  EXPECT_DOUBLE_EQ(h.count(0), 2);
  EXPECT_DOUBLE_EQ(h.count(1), 1);
  EXPECT_DOUBLE_EQ(h.count(4), 1);
  EXPECT_DOUBLE_EQ(h.total(), 4);
}

TEST(Histogram, UnderOverflowClampedAndCounted) {
  Histogram h(0.0, 10.0, 2);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.count(0), 1);
  EXPECT_DOUBLE_EQ(h.count(1), 1);
}

TEST(Histogram, WeightedSamples) {
  Histogram h(0.0, 4.0, 2);
  h.add(1.0, 2.5);
  h.add(3.0, 0.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.5);
  EXPECT_DOUBLE_EQ(h.count(1), 0.5);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
  EXPECT_THROW(h.bin_lo(4), std::out_of_range);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// The paper's Fig. 2(b) size categories: <0.5, 0.5-1, 1-5, 5-25, >25 MB.
TEST(EdgeHistogram, PaperSizeCategories) {
  EdgeHistogram h({0.5, 1.0, 5.0, 25.0});
  ASSERT_EQ(h.bins(), 5u);
  h.add(0.1);    // bin 0
  h.add(0.5);    // bin 0 (closed right edge)
  h.add(0.75);   // bin 1
  h.add(3.0);    // bin 2
  h.add(20.0);   // bin 3
  h.add(100.0);  // bin 4
  EXPECT_DOUBLE_EQ(h.count(0), 2);
  EXPECT_DOUBLE_EQ(h.count(1), 1);
  EXPECT_DOUBLE_EQ(h.count(2), 1);
  EXPECT_DOUBLE_EQ(h.count(3), 1);
  EXPECT_DOUBLE_EQ(h.count(4), 1);
}

TEST(EdgeHistogram, FractionsSumToOne) {
  EdgeHistogram h({1.0, 2.0});
  h.add(0.5, 2.0);
  h.add(1.5, 1.0);
  h.add(9.0, 1.0);
  double sum = 0;
  for (std::size_t i = 0; i < h.bins(); ++i) sum += h.fraction(i);
  EXPECT_DOUBLE_EQ(sum, 1.0);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.5);
}

TEST(EdgeHistogram, Labels) {
  EdgeHistogram h({0.5, 1.0, 5.0, 25.0});
  EXPECT_EQ(h.label(0), "x<0.5");
  EXPECT_EQ(h.label(1), "0.5<x<1");
  EXPECT_EQ(h.label(2), "1<x<5");
  EXPECT_EQ(h.label(3), "5<x<25");
  EXPECT_EQ(h.label(4), "25<x");
}

TEST(EdgeHistogram, RejectsUnsortedOrEmptyEdges) {
  EXPECT_THROW(EdgeHistogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(EdgeHistogram(std::vector<double>{}), std::invalid_argument);
}

TEST(EdgeHistogram, ZeroTotalFractionIsZero) {
  EdgeHistogram h({1.0});
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

}  // namespace
}  // namespace u1
