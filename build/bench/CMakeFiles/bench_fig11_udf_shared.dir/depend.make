# Empty dependencies file for bench_fig11_udf_shared.
# This may be replaced when dependencies are built.
