# Empty dependencies file for u1trace.
# This may be replaced when dependencies are built.
