// DDoS detection (paper §5.4, Fig. 5): hourly request-rate series per
// request family (rpc / session / auth / storage) and a simple anomaly
// detector that flags hours whose session+auth activity exceeds a robust
// multiple of the typical level — the signature the U1 operators saw.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/timeseries.hpp"
#include "trace/sink.hpp"

namespace u1 {

class DdosAnalyzer final : public TraceSink {
 public:
  DdosAnalyzer(SimTime start, SimTime end);

  void append(const TraceRecord& record) override;

  const TimeBinSeries& rpc_per_hour() const noexcept { return rpc_; }
  const TimeBinSeries& session_per_hour() const noexcept { return session_; }
  const TimeBinSeries& auth_per_hour() const noexcept { return auth_; }
  const TimeBinSeries& storage_per_hour() const noexcept { return storage_; }

  struct AttackWindow {
    std::size_t first_hour = 0;  // bin indices, inclusive
    std::size_t last_hour = 0;
    double peak_multiplier = 0;  // peak session+auth rate / typical rate
    double api_multiplier = 0;   // peak storage+session rate / typical
  };
  /// Hours where session+auth activity exceeds `threshold` x the median
  /// hourly level, merged into contiguous windows.
  std::vector<AttackWindow> detect(double threshold = 3.0) const;

  /// Distinct calendar days containing detected attacks.
  std::size_t attack_days(double threshold = 3.0) const;

 private:
  TimeBinSeries rpc_;
  TimeBinSeries session_;
  TimeBinSeries auth_;
  TimeBinSeries storage_;
};

}  // namespace u1
