#include "analysis/transition_graph.hpp"

#include <algorithm>

namespace u1 {

void TransitionGraphAnalyzer::append(const TraceRecord& r) {
  if (r.t < 0) return;
  if (r.type == RecordType::kSession &&
      r.session_event == SessionEvent::kClose) {
    last_op_.erase(r.session);
    return;
  }
  if (r.type != RecordType::kStorage || r.failed) return;
  const auto it = last_op_.find(r.session);
  if (it != last_op_.end()) {
    ++matrix_[static_cast<std::size_t>(it->second)]
             [static_cast<std::size_t>(r.api_op)];
    ++total_;
    it->second = r.api_op;
  } else {
    last_op_.emplace(r.session, r.api_op);
  }
}

std::vector<TransitionGraphAnalyzer::Edge> TransitionGraphAnalyzer::edges()
    const {
  std::vector<Edge> out;
  for (std::size_t from = 0; from < kApiOpCount; ++from) {
    for (std::size_t to = 0; to < kApiOpCount; ++to) {
      const std::uint64_t c = matrix_[from][to];
      if (c == 0) continue;
      Edge e;
      e.from = static_cast<ApiOp>(from);
      e.to = static_cast<ApiOp>(to);
      e.count = c;
      e.global_probability =
          total_ > 0 ? static_cast<double>(c) / static_cast<double>(total_)
                     : 0;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Edge& a, const Edge& b) { return a.count > b.count; });
  return out;
}

double TransitionGraphAnalyzer::conditional(ApiOp from, ApiOp to) const {
  const auto& row = matrix_[static_cast<std::size_t>(from)];
  std::uint64_t row_total = 0;
  for (const std::uint64_t c : row) row_total += c;
  if (row_total == 0) return 0.0;
  return static_cast<double>(row[static_cast<std::size_t>(to)]) /
         static_cast<double>(row_total);
}

}  // namespace u1
