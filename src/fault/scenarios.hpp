// Canned incident scenarios: named, documented fault-plan scripts that
// replay the compound production incidents the paper's back-end actually
// suffered (§3.4, §8) — not isolated windows but cause→effect chains
// expressed with the fault DAG's `after=` edges. Each scenario carries a
// short operator narrative, the backend posture it assumes (per-process
// session cap, balancer slow-start window) and an expected-impact band
// at the chaos-CI reference scale (1,000 users × 3 days, any fault
// seed); bench_fault_recovery --scenario enforces the band and exits
// nonzero when a metric leaves it.
//
// Selection surfaces: `u1trace generate --fault-plan @<name>`,
// `u1d --fault-plan @<name>`, the `U1SIM_FAULTS=<name>` bench knob and
// `bench_fault_recovery --scenario <name>|all`.
#pragma once

#include <string_view>
#include <vector>

#include "fault/fault_plan.hpp"

namespace u1 {

/// Pass/fail band for the chaos-CI metrics, calibrated at the reference
/// scale (1,000 users, 3 days) with margin for seed-to-seed variance.
struct ScenarioBand {
  double min_availability = 0;         // 1 - failed/total storage ops
  double max_retry_amplification = 0;  // PutContent attempts per success
  /// Worst per-window time-to-recover, seconds; windows that never
  /// recover before the horizon also violate the band.
  double max_time_to_recover_s = 0;
};

struct IncidentScenario {
  std::string_view name;
  std::string_view title;
  /// The incident story, told the way a postmortem would tell it.
  std::string_view narrative;
  /// Fault-plan script (parse_fault_plan grammar, incl. after= edges).
  std::string_view plan_text;
  /// Balancer slow-start window the scenario assumes (0 = off).
  SimTime slow_start = 0;
  /// Per-process session cap (load shedding) the scenario assumes.
  std::uint64_t session_cap = 0;
  ScenarioBand band;
};

/// All canned scenarios, in registry order: regional_outage_failback,
/// retry_storm, cache_stampede, rolling_restart.
const std::vector<IncidentScenario>& incident_scenarios();

/// nullptr when `name` is not a canned scenario.
const IncidentScenario* find_incident_scenario(std::string_view name);

/// The scenario's parsed fault plan; throws std::invalid_argument with
/// the known names when `name` is unknown.
FaultPlan incident_plan(std::string_view name);

}  // namespace u1
