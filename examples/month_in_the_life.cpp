// Month in the life of a personal cloud: runs the full 30-day simulation
// (the paper's trace window, Jan 11 - Feb 10 2014), writes the trace to
// U1-format logfiles, reads them back like the paper's collection pipeline
// did, and prints a daily operations report.
//
// Usage: month_in_the_life [users] [logfile-dir]
//   users       population size (default 3000)
//   logfile-dir where production-<machine>-<proc>-<date> logfiles go
//               (default: skip persistence, analyze in-process).
//               Set U1SIM_TRACE_FORMAT=bin for columnar .u1b files
//               instead of CSV.
#include <cstdio>
#include <cstdlib>

#include "analysis/ddos_detect.hpp"
#include "analysis/sessions.hpp"
#include "analysis/trace_summary.hpp"
#include "analysis/traffic.hpp"
#include "sim/simulation.hpp"
#include "trace/binlog.hpp"
#include "trace/logfile.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace u1;
  const std::size_t users =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 3000;
  const char* logdir = argc > 2 ? argv[2] : nullptr;

  SimulationConfig cfg;
  cfg.users = users;
  cfg.days = 30;
  const SimTime horizon = cfg.days * kDay;

  TrafficAnalyzer traffic(0, horizon);
  TraceSummaryAnalyzer summary(horizon);
  SessionAnalyzer sessions(0, horizon);
  DdosAnalyzer ddos(0, horizon);
  MultiSink fanout;
  fanout.add(&traffic);
  fanout.add(&summary);
  fanout.add(&sessions);
  fanout.add(&ddos);

  std::unique_ptr<LogfileSink> writer;
  if (logdir != nullptr) {
    writer = make_logfile_writer(logdir, trace_format_from_env());
    fanout.add(writer.get());
  }

  std::printf("simulating %zu users for 30 days (2014-01-11 .. "
              "2014-02-10)...\n", users);
  Simulation sim(cfg, fanout);
  sim.run();
  if (writer != nullptr) {
    writer->close();
    // Round-trip through the logfiles exactly as the paper's pipeline.
    CountingSink reread;
    const ReadStats stats = read_logfiles(logdir, reread);
    std::printf("persisted and re-read %llu rows from %llu logfiles "
                "(%llu malformed)\n",
                static_cast<unsigned long long>(stats.rows),
                static_cast<unsigned long long>(stats.files),
                static_cast<unsigned long long>(stats.malformed));
  }

  const auto s = summary.summary();
  std::printf("\n=== month report ===\n");
  std::printf("unique users:   %llu\n",
              static_cast<unsigned long long>(s.unique_users));
  std::printf("unique files:   %llu\n",
              static_cast<unsigned long long>(s.unique_files));
  std::printf("sessions:       %llu (%.1f%% < 1s, %.1f%% active)\n",
              static_cast<unsigned long long>(s.sessions),
              100.0 * sessions.fraction_shorter_than(kSecond),
              100.0 * sessions.active_session_fraction());
  std::printf("transfer ops:   %llu\n",
              static_cast<unsigned long long>(s.transfer_ops));
  std::printf("traffic:        up=%s down=%s (R/W median %.2f)\n",
              format_bytes(static_cast<double>(s.upload_bytes)).c_str(),
              format_bytes(static_cast<double>(s.download_bytes)).c_str(),
              traffic.rw_boxplot().median);
  std::printf("update share:   %.1f%% of uploads, %.1f%% of traffic\n",
              100.0 * traffic.update_op_fraction(),
              100.0 * traffic.update_traffic_fraction());
  std::printf("auth failures:  %.2f%%\n",
              100.0 * sessions.auth_failure_fraction());
  std::printf("DDoS attacks:   %zu detected\n", ddos.attack_days());

  std::printf("\ndaily upload volume:\n");
  const auto& up = traffic.upload_bytes_hourly();
  for (int d = 0; d < cfg.days; ++d) {
    double day_bytes = 0;
    for (int h = 0; h < 24; ++h) {
      const std::size_t bin = static_cast<std::size_t>(d) * 24 +
                              static_cast<std::size_t>(h);
      if (bin < up.bins()) day_bytes += up.value(bin);
    }
    std::printf("  %s  %10s %s\n", trace_date(d * kDay).c_str(),
                format_bytes(day_bytes).c_str(),
                (d == 4 || d == 5 || d == 26) ? " <- DDoS day" : "");
  }
  return 0;
}
