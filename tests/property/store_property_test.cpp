// Parameterized property sweeps over the metadata store and service-time
// model: invariants must hold for every shard count and every RPC type.
#include <gtest/gtest.h>

#include <vector>

#include "stats/ecdf.hpp"
#include "store/metadata_store.hpp"
#include "store/service_time.hpp"
#include "util/sha1.hpp"

namespace u1 {
namespace {

// ---------------------------------------------------------------------------
// Routing: stable, in-range and balanced for any cluster size.
// ---------------------------------------------------------------------------
class ShardRouting : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardRouting, BalancedAndStable) {
  const std::size_t shards = GetParam();
  MetadataStore store(shards, 1);
  std::vector<int> counts(shards, 0);
  for (std::uint64_t u = 1; u <= 20000; ++u) {
    const ShardId s = store.shard_of(UserId{u});
    ASSERT_GE(s.value, 1u);
    ASSERT_LE(s.value, shards);
    ASSERT_EQ(s, store.shard_of(UserId{u}));
    counts[s.value - 1]++;
  }
  const double expected = 20000.0 / static_cast<double>(shards);
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, 5.0 * std::sqrt(expected));
  }
}

TEST_P(ShardRouting, UserDataStaysOnOneShard) {
  const std::size_t shards = GetParam();
  MetadataStore store(shards, 2);
  const Volume root = store.create_user(UserId{7}, 0);
  store.make_file(UserId{7}, root.id, root.root_dir, "a", "txt", 0);
  EXPECT_EQ(store.shards_touched().size(), 1u);
  store.create_udf(UserId{7}, 0);
  EXPECT_EQ(store.shards_touched().size(), 1u);
  store.get_delta(UserId{7}, root.id, 0);
  EXPECT_EQ(store.shards_touched().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, ShardRouting,
                         ::testing::Values(1u, 2u, 5u, 10u, 20u, 40u));

// ---------------------------------------------------------------------------
// Namespace invariant: create N files -> delta(0) returns all of them plus
// nothing else; unlink removes exactly what it should. Swept over sizes.
// ---------------------------------------------------------------------------
class NamespaceSize : public ::testing::TestWithParam<int> {};

TEST_P(NamespaceSize, DeltaAndCascadeConsistency) {
  const int n = GetParam();
  MetadataStore store(10, 3);
  const Volume root = store.create_user(UserId{1}, 0);
  const Node dir = store.make_dir(UserId{1}, root.id, root.root_dir, "d", 0);
  std::vector<NodeId> files;
  for (int i = 0; i < n; ++i) {
    files.push_back(store.make_file(UserId{1}, root.id, dir.id,
                                    std::to_string(i), "txt", 0)
                        .id);
  }
  // From scratch: root dir + dir + n files.
  EXPECT_EQ(store.get_from_scratch(UserId{1}, root.id).size(),
            static_cast<std::size_t>(n) + 2);
  // Attach content to every other file, then cascade-delete the dir.
  int with_content = 0;
  for (int i = 0; i < n; i += 2) {
    store.make_content(UserId{1}, files[static_cast<std::size_t>(i)],
                       Sha1::of("c" + std::to_string(i)), 10,
                       "k" + std::to_string(i));
    ++with_content;
  }
  const auto dead = store.unlink_node(UserId{1}, dir.id);
  EXPECT_EQ(dead.size(), static_cast<std::size_t>(with_content));
  EXPECT_EQ(store.get_from_scratch(UserId{1}, root.id).size(), 1u);
  // Registry drained.
  EXPECT_EQ(store.contents().logical_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, NamespaceSize,
                         ::testing::Values(0, 1, 7, 64, 500));

// ---------------------------------------------------------------------------
// Service-time model: for EVERY RPC op the sample distribution must honor
// the class ordering, the clamps and the tail-probability calibration.
// ---------------------------------------------------------------------------
class ServiceTimePerOp : public ::testing::TestWithParam<RpcOp> {};

TEST_P(ServiceTimePerOp, CalibrationInvariants) {
  const RpcOp op = GetParam();
  ServiceTimeModel model;
  Rng rng(static_cast<std::uint64_t>(op) + 100);
  std::vector<double> xs;
  for (int i = 0; i < 30000; ++i)
    xs.push_back(to_seconds(model.sample(op, rng)));
  Ecdf e(std::move(xs));
  // Clamps.
  EXPECT_GE(e.min(), 1e-4);
  EXPECT_LE(e.max(), 100.0);
  // Median within a factor 2 of the configured body median.
  const double target = to_seconds(model.median(op));
  EXPECT_GT(e.quantile(0.5), target / 2) << to_string(op);
  EXPECT_LT(e.quantile(0.5), target * 2) << to_string(op);
  // Long tail present: p99.5 well beyond the median (Fig. 12).
  EXPECT_GT(e.quantile(0.995), 5.0 * e.quantile(0.5)) << to_string(op);
  // Class floors: cascades are the slow family.
  if (rpc_class(op) == RpcClass::kCascade)
    EXPECT_GT(e.quantile(0.5), 0.02) << to_string(op);
  if (rpc_class(op) == RpcClass::kRead)
    EXPECT_LT(e.quantile(0.5), 0.01) << to_string(op);
}

INSTANTIATE_TEST_SUITE_P(
    AllRpcs, ServiceTimePerOp,
    ::testing::ValuesIn(all_rpc_ops().begin(), all_rpc_ops().end()),
    [](const ::testing::TestParamInfo<RpcOp>& info) {
      std::string name(to_string(info.param));
      for (char& c : name)
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      return name;
    });

}  // namespace
}  // namespace u1
