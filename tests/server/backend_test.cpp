#include "server/backend.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/sha1.hpp"

namespace u1 {
namespace {

class BackendTest : public ::testing::Test {
 protected:
  BackendTest() {
    config_.auth_failure_rate = 0.0;  // deterministic unless a test opts in
    config_.seed = 42;
    backend_ = std::make_unique<U1Backend>(config_, sink_);
  }

  /// Registers + connects a user; returns (account, session).
  std::pair<UserAccount, SessionId> enroll(std::uint64_t uid, SimTime t) {
    const UserAccount acc = backend_->register_user(UserId{uid}, t);
    const auto conn = backend_->connect(UserId{uid}, t);
    EXPECT_TRUE(conn.ok());
    return {acc, conn.session};
  }

  std::uint64_t count_records(RecordType type) const {
    return static_cast<std::uint64_t>(std::count_if(
        sink_.records().begin(), sink_.records().end(),
        [&](const TraceRecord& r) { return r.type == type; }));
  }

  std::uint64_t count_rpcs(RpcOp op) const {
    return static_cast<std::uint64_t>(std::count_if(
        sink_.records().begin(), sink_.records().end(),
        [&](const TraceRecord& r) {
          return r.type == RecordType::kRpc && r.rpc_op == op;
        }));
  }

  BackendConfig config_;
  InMemorySink sink_;
  std::unique_ptr<U1Backend> backend_;
};

TEST_F(BackendTest, ConnectEmitsSessionRecords) {
  enroll(1, kHour);
  // auth_request, auth_ok, open.
  EXPECT_EQ(count_records(RecordType::kSession), 3u);
  EXPECT_EQ(count_rpcs(RpcOp::kGetUserIdFromToken), 1u);
  EXPECT_EQ(backend_->stats().sessions_opened, 1u);
  EXPECT_EQ(backend_->fleet().total_open_sessions(), 1u);
  // The auth RPC touches no metadata shard.
  for (const auto& r : sink_.records()) {
    if (r.type == RecordType::kRpc && r.rpc_op == RpcOp::kGetUserIdFromToken)
      EXPECT_EQ(r.shard.value, 0u);
  }
}

TEST_F(BackendTest, DisconnectClosesAndRecordsDuration) {
  const auto [acc, sid] = enroll(1, kHour);
  backend_->disconnect(sid, kHour + 90 * kMinute);
  EXPECT_FALSE(backend_->session_open(sid));
  EXPECT_EQ(backend_->fleet().total_open_sessions(), 0u);
  const auto& recs = sink_.records();
  const auto close = std::find_if(recs.begin(), recs.end(),
                                  [](const TraceRecord& r) {
                                    return r.session_event ==
                                           SessionEvent::kClose;
                                  });
  ASSERT_NE(close, recs.end());
  EXPECT_NEAR(to_seconds(close->duration), 90 * 60, 1.0);
}

TEST_F(BackendTest, AuthFailureBlocksSession) {
  BackendConfig cfg = config_;
  cfg.auth_failure_rate = 0.999;  // first issue_token draw will fail
  InMemorySink sink;
  U1Backend backend(cfg, sink);
  backend.register_user(UserId{5}, 0);
  const auto conn = backend.connect(UserId{5}, kHour);
  EXPECT_FALSE(conn.ok());
  EXPECT_EQ(backend.stats().auth_failures, 1u);
  EXPECT_EQ(backend.fleet().total_open_sessions(), 0u);
  bool saw_fail = false;
  for (const auto& r : sink.records())
    saw_fail |= (r.session_event == SessionEvent::kAuthFail);
  EXPECT_TRUE(saw_fail);
}

TEST_F(BackendTest, OperationsOnClosedSessionFailGracefully) {
  // A crash can drop a session while the client still believes it is
  // connected; the next op must come back ok=false, never throw.
  const auto [acc, sid] = enroll(1, kHour);
  backend_->disconnect(sid, 2 * kHour);
  EXPECT_FALSE(backend_->list_volumes(sid, 3 * kHour).ok());
  EXPECT_FALSE(backend_->download(sid, acc.root_dir, 3 * kHour).ok());
  EXPECT_FALSE(backend_->make_file(sid, acc.root_volume, acc.root_dir, "f",
                                   "", 3 * kHour)
                   .ok());
  EXPECT_FALSE(backend_->upload(sid, acc.root_dir, Sha1::of("x"), 100, false,
                                3 * kHour)
                   .ok());
  // Double disconnect is a no-op, not a crash.
  EXPECT_EQ(backend_->disconnect(sid, 4 * kHour).end, 4 * kHour);
}

TEST_F(BackendTest, SmallUploadSingleShot) {
  const auto [acc, sid] = enroll(1, kHour);
  const auto mk = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "f1", "jpg", kHour);
  ASSERT_TRUE(mk.ok());
  const auto up = backend_->upload(sid, mk.node, Sha1::of("photo"),
                                   512 * 1024, false, mk.end);
  ASSERT_TRUE(up.ok());
  EXPECT_FALSE(up.deduplicated());
  EXPECT_EQ(up.transferred_bytes, 512u * 1024);
  EXPECT_GT(up.end, mk.end);
  // Single-shot path: no uploadjob involved.
  EXPECT_EQ(count_rpcs(RpcOp::kMakeUploadJob), 0u);
  EXPECT_EQ(count_rpcs(RpcOp::kMakeContent), 1u);
  EXPECT_EQ(count_rpcs(RpcOp::kGetReusableContent), 1u);
  EXPECT_EQ(backend_->s3().object_count(), 1u);
  EXPECT_EQ(backend_->s3().stored_bytes(), 512u * 1024);
}

TEST_F(BackendTest, LargeUploadUsesMultipart) {
  const auto [acc, sid] = enroll(1, kHour);
  const auto mk = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "big", "zip", kHour);
  const std::uint64_t size = 12ull * 1024 * 1024;  // 12MB -> 3 parts
  const auto up =
      backend_->upload(sid, mk.node, Sha1::of("big"), size, false, mk.end);
  ASSERT_TRUE(up.ok());
  EXPECT_EQ(count_rpcs(RpcOp::kMakeUploadJob), 1u);
  EXPECT_EQ(count_rpcs(RpcOp::kSetUploadJobMultipartId), 1u);
  EXPECT_EQ(count_rpcs(RpcOp::kAddPartToUploadJob), 3u);
  EXPECT_EQ(count_rpcs(RpcOp::kDeleteUploadJob), 1u);
  EXPECT_EQ(backend_->s3().stored_bytes(), size);
  // Uploadjob cleaned up after completion (Fig. 17 terminal state).
  EXPECT_EQ(backend_->store().shard(backend_->store().shard_of(UserId{1}))
                .uploadjob_count(),
            0u);
}

TEST_F(BackendTest, DedupSecondUploadTransfersNothing) {
  const auto [acc, sid] = enroll(1, kHour);
  const auto f1 = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "a", "mp3", kHour);
  const auto f2 = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "b", "mp3", kHour);
  const ContentId song = Sha1::of("song");
  const auto up1 =
      backend_->upload(sid, f1.node, song, 4 << 20, false, 2 * kHour);
  const auto up2 =
      backend_->upload(sid, f2.node, song, 4 << 20, false, up1.end);
  EXPECT_FALSE(up1.deduplicated());
  EXPECT_TRUE(up2.deduplicated());
  EXPECT_EQ(up2.transferred_bytes, 0u);
  EXPECT_EQ(backend_->stats().dedup_hits, 1u);
  EXPECT_EQ(backend_->s3().object_count(), 1u);
  EXPECT_NEAR(backend_->store().contents().dedup_ratio(), 0.5, 1e-9);
  // Dedup hit completes much faster than the original transfer.
  EXPECT_LT(up2.end - up1.end, up1.end - 2 * kHour);
}

TEST_F(BackendTest, DedupDisabledStoresEveryCopy) {
  BackendConfig cfg = config_;
  cfg.enable_dedup = false;
  InMemorySink sink;
  U1Backend backend(cfg, sink);
  const auto acc = backend.register_user(UserId{1}, 0);
  const auto conn = backend.connect(UserId{1}, kHour);
  const auto f1 = backend.make_file(conn.session, acc.root_volume,
                                    acc.root_dir, "a", "", kHour);
  const auto f2 = backend.make_file(conn.session, acc.root_volume,
                                    acc.root_dir, "b", "", kHour);
  const ContentId same = Sha1::of("same");
  backend.upload(conn.session, f1.node, same, 1 << 20, false, kHour);
  backend.upload(conn.session, f2.node, same, 1 << 20, false, 2 * kHour);
  EXPECT_EQ(backend.stats().dedup_hits, 0u);
  EXPECT_EQ(backend.s3().object_count(), 2u);
  EXPECT_EQ(backend.s3().stored_bytes(), 2u << 20);
}

TEST_F(BackendTest, DeltaUpdatesShrinkUpdateTraffic) {
  BackendConfig cfg = config_;
  cfg.enable_delta_updates = true;
  cfg.delta_update_fraction = 0.1;
  InMemorySink sink;
  U1Backend backend(cfg, sink);
  const auto acc = backend.register_user(UserId{1}, 0);
  const auto conn = backend.connect(UserId{1}, kHour);
  const auto mk = backend.make_file(conn.session, acc.root_volume,
                                    acc.root_dir, "doc", "doc", kHour);
  const std::uint64_t size = 2 << 20;
  const auto v1 = backend.upload(conn.session, mk.node, Sha1::of("v1"), size,
                                 false, kHour);
  EXPECT_EQ(v1.transferred_bytes, size);  // initial upload is full
  const auto v2 = backend.upload(conn.session, mk.node, Sha1::of("v2"), size,
                                 true, v1.end);
  EXPECT_EQ(v2.transferred_bytes, size / 10);  // update ships the delta
}

TEST_F(BackendTest, UpdateReplacesS3Object) {
  const auto [acc, sid] = enroll(1, kHour);
  const auto mk = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "doc", "doc", kHour);
  backend_->upload(sid, mk.node, Sha1::of("v1"), 1000, false, kHour);
  backend_->upload(sid, mk.node, Sha1::of("v2"), 1200, true, 2 * kHour);
  // v1's blob became orphaned and was removed from S3.
  EXPECT_EQ(backend_->s3().object_count(), 1u);
  EXPECT_EQ(backend_->s3().stored_bytes(), 1200u);
}

TEST_F(BackendTest, DownloadTransfersBytes) {
  const auto [acc, sid] = enroll(1, kHour);
  const auto mk = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "f", "pdf", kHour);
  backend_->upload(sid, mk.node, Sha1::of("pdf"), 256 * 1024, false, kHour);
  const auto down = backend_->download(sid, mk.node, 3 * kHour);
  ASSERT_TRUE(down.ok());
  EXPECT_EQ(down.transferred_bytes, 256u * 1024);
  EXPECT_EQ(backend_->stats().download_bytes, 256u * 1024);
}

TEST_F(BackendTest, DownloadOfEmptyFileFails) {
  const auto [acc, sid] = enroll(1, kHour);
  const auto mk = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "empty", "", kHour);
  const auto down = backend_->download(sid, mk.node, 2 * kHour);
  EXPECT_FALSE(down.ok());
  bool saw_failed = false;
  for (const auto& r : sink_.records()) saw_failed |= r.failed;
  EXPECT_TRUE(saw_failed);
}

TEST_F(BackendTest, UnlinkDeletesFromS3) {
  const auto [acc, sid] = enroll(1, kHour);
  const auto mk = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "f", "", kHour);
  backend_->upload(sid, mk.node, Sha1::of("x"), 1000, false, kHour);
  EXPECT_EQ(backend_->s3().object_count(), 1u);
  const auto res = backend_->unlink(sid, mk.node, 2 * kHour);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(backend_->s3().object_count(), 0u);
}

TEST_F(BackendTest, StorageAndStorageDonePair) {
  const auto [acc, sid] = enroll(1, kHour);
  backend_->list_volumes(sid, 2 * kHour);
  backend_->query_set_caps(sid, 2 * kHour);
  EXPECT_EQ(count_records(RecordType::kStorage),
            count_records(RecordType::kStorageDone));
}

TEST_F(BackendTest, StorageDoneCarriesDuration) {
  const auto [acc, sid] = enroll(1, kHour);
  backend_->list_volumes(sid, 2 * kHour);
  for (const auto& r : sink_.records()) {
    if (r.type == RecordType::kStorageDone) EXPECT_GT(r.duration, 0);
  }
}

TEST_F(BackendTest, CreateUdfAndDeleteVolume) {
  const auto [acc, sid] = enroll(1, kHour);
  const auto udf = backend_->create_udf(sid, 2 * kHour);
  ASSERT_TRUE(udf.ok());
  const auto mk = backend_->make_file(sid, udf.volume, udf.root_dir, "f", "",
                                      3 * kHour);
  backend_->upload(sid, mk.node, Sha1::of("z"), 100, false, 3 * kHour);
  const auto del = backend_->delete_volume(sid, udf.volume, 4 * kHour);
  EXPECT_TRUE(del.ok());
  EXPECT_EQ(backend_->s3().object_count(), 0u);
  EXPECT_EQ(count_rpcs(RpcOp::kDeleteVolume), 1u);
}

TEST_F(BackendTest, MoveEmitsRpc) {
  const auto [acc, sid] = enroll(1, kHour);
  const auto d =
      backend_->make_dir(sid, acc.root_volume, acc.root_dir, "d", kHour);
  const auto f = backend_->make_file(sid, acc.root_volume, acc.root_dir, "f",
                                     "", kHour);
  const auto res = backend_->move(sid, f.node, d.node, 2 * kHour);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(count_rpcs(RpcOp::kMove), 1u);
}

TEST_F(BackendTest, SharedVolumeChangesPublishNotifications) {
  const auto [acc1, sid1] = enroll(1, kHour);
  enroll(2, kHour);
  backend_->share_volume(UserId{1}, acc1.root_volume, UserId{2}, kHour);
  const std::uint64_t before = backend_->notifications().published();
  backend_->make_file(sid1, acc1.root_volume, acc1.root_dir, "shared", "",
                      2 * kHour);
  EXPECT_EQ(backend_->notifications().published(), before + 1);
  EXPECT_GT(backend_->stats().notifications, 0u);
}

TEST_F(BackendTest, UnsharedVolumeChangesAreSilent) {
  const auto [acc, sid] = enroll(1, kHour);
  backend_->make_file(sid, acc.root_volume, acc.root_dir, "solo", "",
                      2 * kHour);
  EXPECT_EQ(backend_->notifications().published(), 0u);
}

TEST_F(BackendTest, GetDeltaAndRescan) {
  const auto [acc, sid] = enroll(1, kHour);
  backend_->make_file(sid, acc.root_volume, acc.root_dir, "f", "", kHour);
  const auto delta = backend_->get_delta(sid, acc.root_volume, 0, 2 * kHour);
  EXPECT_TRUE(delta.ok());
  const auto rescan =
      backend_->rescan_from_scratch(sid, acc.root_volume, 2 * kHour);
  EXPECT_TRUE(rescan.ok());
  EXPECT_EQ(count_rpcs(RpcOp::kGetDelta), 1u);
  EXPECT_EQ(count_rpcs(RpcOp::kGetFromScratch), 1u);
}

TEST_F(BackendTest, AdminPurgeKillsSessionsAndContent) {
  const auto [acc, sid] = enroll(66, kHour);
  const auto mk = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "warez", "avi", kHour);
  backend_->upload(sid, mk.node, Sha1::of("illegal"), 10 << 20, false, kHour);
  EXPECT_EQ(backend_->s3().object_count(), 1u);

  backend_->admin_purge_user(UserId{66}, 5 * kHour);
  EXPECT_FALSE(backend_->session_open(sid));
  EXPECT_EQ(backend_->s3().object_count(), 0u);
  // Token revoked: reconnection fails.
  const auto again = backend_->connect(UserId{66}, 6 * kHour);
  EXPECT_FALSE(again.ok());
}

TEST_F(BackendTest, MaintenanceCollectsStaleUploadJobs) {
  // Create an uploadjob manually via a crashed upload: simulate by making
  // a job through the store interface is private; instead start a large
  // upload and verify jobs are gone, then check gc of a synthetic stale
  // job through maintenance idempotency (no throw, no effect).
  backend_->maintenance(30 * kDay);
  backend_->maintenance(30 * kDay + kHour);  // within the same day: no-op
  SUCCEED();
}

TEST_F(BackendTest, WriteRpcsQueueOnShardMaster) {
  // Two back-to-back writes from the same user must not have overlapping
  // service windows on the shard master.
  const auto [acc, sid] = enroll(1, kHour);
  backend_->make_file(sid, acc.root_volume, acc.root_dir, "a", "", kHour);
  backend_->make_file(sid, acc.root_volume, acc.root_dir, "b", "", kHour);
  std::vector<const TraceRecord*> writes;
  for (const auto& r : sink_.records()) {
    if (r.type == RecordType::kRpc &&
        (r.rpc_op == RpcOp::kMakeFile || r.rpc_op == RpcOp::kMakeDir))
      writes.push_back(&r);
  }
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_GE(writes[1]->t, writes[0]->t + writes[0]->service_time);
}

TEST_F(BackendTest, StatsTrackTraffic) {
  const auto [acc, sid] = enroll(1, kHour);
  const auto mk = backend_->make_file(sid, acc.root_volume, acc.root_dir,
                                      "f", "", kHour);
  backend_->upload(sid, mk.node, Sha1::of("1"), 1000, false, kHour);
  backend_->download(sid, mk.node, 2 * kHour);
  EXPECT_EQ(backend_->stats().uploads, 1u);
  EXPECT_EQ(backend_->stats().downloads, 1u);
  EXPECT_EQ(backend_->stats().upload_bytes_wire, 1000u);
  EXPECT_EQ(backend_->stats().upload_bytes_logical, 1000u);
  EXPECT_EQ(backend_->stats().download_bytes, 1000u);
}

}  // namespace
}  // namespace u1
