// Micro-benchmarks of the back-end substrates: metadata store operations,
// the upload state machine, session establishment and notification
// fan-out (google-benchmark).
#include <benchmark/benchmark.h>

#include "server/backend.hpp"
#include "store/metadata_store.hpp"
#include "trace/sink.hpp"
#include "util/sha1.hpp"

namespace {

using namespace u1;

void BM_ShardRouting(benchmark::State& state) {
  MetadataStore store(10, 1);
  std::uint64_t u = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.shard_of(UserId{u++}));
  }
}
BENCHMARK(BM_ShardRouting);

void BM_StoreMakeFile(benchmark::State& state) {
  MetadataStore store(10, 2);
  const Volume root = store.create_user(UserId{1}, 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.make_file(UserId{1}, root.id,
                                             root.root_dir,
                                             std::to_string(i++), "txt", 0));
  }
}
BENCHMARK(BM_StoreMakeFile);

void BM_StoreGetNode(benchmark::State& state) {
  MetadataStore store(10, 3);
  const Volume root = store.create_user(UserId{1}, 0);
  const Node node =
      store.make_file(UserId{1}, root.id, root.root_dir, "f", "txt", 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.get_node(UserId{1}, node.id));
  }
}
BENCHMARK(BM_StoreGetNode);

void BM_StoreGetDelta(benchmark::State& state) {
  MetadataStore store(10, 4);
  const Volume root = store.create_user(UserId{1}, 0);
  for (int i = 0; i < state.range(0); ++i)
    store.make_file(UserId{1}, root.id, root.root_dir, std::to_string(i),
                    "c", 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.get_delta(UserId{1}, root.id,
                        static_cast<std::uint64_t>(state.range(0) - 8)));
  }
}
BENCHMARK(BM_StoreGetDelta)->Arg(100)->Arg(10000);

void BM_ContentRegistryDedup(benchmark::State& state) {
  ContentRegistry reg;
  const ContentId id = Sha1::of("blob");
  reg.insert(id, 1024, "k");
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.lookup(id, 1024));
  }
}
BENCHMARK(BM_ContentRegistryDedup);

void BM_BackendConnectDisconnect(benchmark::State& state) {
  BackendConfig cfg;
  cfg.auth_failure_rate = 0.0;
  NullSink sink;
  U1Backend backend(cfg, sink);
  backend.register_user(UserId{1}, 0);
  SimTime t = 0;
  for (auto _ : state) {
    const auto conn = backend.connect(UserId{1}, t);
    t = backend.disconnect(conn.session, conn.end).end + kSecond;
  }
}
BENCHMARK(BM_BackendConnectDisconnect);

void BM_BackendSmallUpload(benchmark::State& state) {
  BackendConfig cfg;
  cfg.auth_failure_rate = 0.0;
  NullSink sink;
  U1Backend backend(cfg, sink);
  const auto acc = backend.register_user(UserId{1}, 0);
  const auto conn = backend.connect(UserId{1}, 0);
  SimTime t = kMinute;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto mk = backend.make_file(conn.session, acc.root_volume,
                                      acc.root_dir, std::to_string(i), "txt",
                                      t);
    const auto up = backend.upload(conn.session, mk.node,
                                   Sha1::of("v" + std::to_string(i++)),
                                   64 * 1024, false, mk.end);
    t = up.end;
  }
}
BENCHMARK(BM_BackendSmallUpload);

void BM_BackendMultipartUpload(benchmark::State& state) {
  BackendConfig cfg;
  cfg.auth_failure_rate = 0.0;
  NullSink sink;
  U1Backend backend(cfg, sink);
  const auto acc = backend.register_user(UserId{1}, 0);
  const auto conn = backend.connect(UserId{1}, 0);
  SimTime t = kMinute;
  std::uint64_t i = 0;
  for (auto _ : state) {
    const auto mk = backend.make_file(conn.session, acc.root_volume,
                                      acc.root_dir, std::to_string(i), "zip",
                                      t);
    const auto up = backend.upload(conn.session, mk.node,
                                   Sha1::of("big" + std::to_string(i++)),
                                   32ull << 20, false, mk.end);
    t = up.end;
  }
}
BENCHMARK(BM_BackendMultipartUpload);

void BM_NotificationFanout(benchmark::State& state) {
  MessageQueue mq;
  std::uint64_t delivered = 0;
  for (std::size_t p = 1; p <= 72; ++p) {
    mq.subscribe(ProcessId{p},
                 [&delivered](const VolumeEvent&) { ++delivered; });
  }
  VolumeEvent event;
  event.origin_process = ProcessId{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mq.publish(event));
  }
}
BENCHMARK(BM_NotificationFanout);

}  // namespace

BENCHMARK_MAIN();
