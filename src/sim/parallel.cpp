#include "sim/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <stdexcept>
#include <string_view>

#if defined(__linux__)
#include <pthread.h>
#include <sys/resource.h>
#include <cstdio>
#include <unistd.h>
#include <sched.h>
#endif

#include "sim/trace_merge.hpp"
#include "util/sha1.hpp"

namespace u1 {
namespace {

/// Fibonacci-hash style per-group seed spreading: groups must get
/// decorrelated streams, derived only from (config seed, group index) so
/// the derivation is identical for any thread count.
std::uint64_t group_mix(std::uint64_t seed, std::size_t group) {
  return seed ^ ((group + 1) * 0x9e3779b97f4a7c15ull);
}

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

ParallelSimulation::Scheduling env_scheduling() {
  if (const char* v = std::getenv("U1SIM_SCHED")) {
    if (std::string_view(v) == "counter")
      return ParallelSimulation::Scheduling::kCounter;
  }
  return ParallelSimulation::Scheduling::kSticky;
}

bool env_pin_workers() {
  const char* v = std::getenv("U1SIM_PIN");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

/// Explicit U1SIM_FLUSH_DEPTH, or nullopt when the engine should pick
/// (2, or 1 in analysis-only mode where nothing is written K-deep).
std::optional<std::size_t> env_flush_depth() {
  if (const char* v = std::getenv("U1SIM_FLUSH_DEPTH")) {
    const long k = std::atol(v);
    if (k >= 1) return static_cast<std::size_t>(k);
  }
  return std::nullopt;
}

/// Sticky-plan rebuild hysteresis: a hard floor on epochs between LPT
/// repartitions, the EMA smoothing factor for the load-drift signal,
/// and the smoothed-drift threshold that justifies paying the cache
/// eviction a repartition causes.
constexpr std::uint64_t kPlanRebuildFloor = 12;
constexpr double kPlanDriftAlpha = 0.3;
constexpr double kPlanDriftThreshold = 0.25;

void pin_thread_to_core(std::thread& thread, std::size_t core) {
#if defined(__linux__)
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(core % hw), &set);
  pthread_setaffinity_np(thread.native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)core;
#endif
}

}  // namespace

ParallelSimulation::ParallelSimulation(const SimulationConfig& config,
                                       TraceSink& sink, std::size_t threads)
    : config_(config),
      sink_(&sink),
      rng_(config.seed),
      scheduling_(env_scheduling()),
      queue_impl_(engine_queue_impl()),
      pin_workers_(env_pin_workers()),
      content_pool_(std::make_unique<ContentPool>(
          config.content_duplicate_prob, config.content_zipf_s,
          config.seed ^ 0xb10b)),
      user_model_(config.user_model),
      diurnal_(config.diurnal),
      bursts_(config.burst) {
  if (config.users == 0 || config.days <= 0)
    throw std::invalid_argument("SimulationConfig: users/days must be > 0");
  if (config.backend.shards == 0)
    throw std::invalid_argument("SimulationConfig: backend.shards must be > 0");
  threads_ = threads != 0
                 ? threads
                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // Analysis-only runs never materialize the trace, so a deeper write
  // ring only holds memory hostage: default the depth to 1 there
  // (explicit U1SIM_FLUSH_DEPTH still wins).
  analysis_only_ = dynamic_cast<NullSink*>(sink_) != nullptr;
  set_flush_depth(env_flush_depth().value_or(analysis_only_ ? 1 : 2));
  if (config.auto_countermeasures) guard_ = std::make_unique<AnomalyGuard>();
  if (!config.faults.empty()) {
    fault_schedule_ = build_fault_schedule(
        config.faults, static_cast<SimTime>(config.days) * kDay,
        config.backend.fleet.machines, config.backend.shards,
        effective_fault_seed(config));
  }
}

ParallelSimulation::~ParallelSimulation() {
  stop_flush_pipeline();
  stop_workers();
}

void ParallelSimulation::attach_analyzer(ShardedAnalyzer& analyzer) {
  if (ran_)
    throw std::logic_error(
        "ParallelSimulation::attach_analyzer: call before run()");
  analyzers_.push_back(&analyzer);
}

void ParallelSimulation::enable_worker_mode(EpochPeer& peer,
                                            std::size_t first_group,
                                            std::size_t group_count) {
  if (ran_)
    throw std::logic_error(
        "ParallelSimulation::enable_worker_mode: call before run()");
  if (group_count == 0 || first_group >= config_.backend.shards ||
      group_count > config_.backend.shards - first_group)
    throw std::invalid_argument(
        "ParallelSimulation::enable_worker_mode: bad group range");
  peer_ = &peer;
  local_first_ = first_group;
  local_count_ = group_count;
  // The worker materializes trace chunks for the peer's shard stream
  // even though its own sink is a NullSink; analysis-only is a
  // coordinator-side decision in distributed runs.
  analysis_only_ = false;
  set_flush_depth(env_flush_depth().value_or(2));
  // Detection needs the cluster-merged stream, so the AnomalyGuard runs
  // on the coordinator; this process only extracts the observation feed.
  if (guard_) {
    guard_.reset();
    collect_feed_ = true;
  }
}

std::size_t ParallelSimulation::group_of(UserId user) const noexcept {
  // Same hash the metadata router uses (MetadataStore::shard_of), so one
  // group's users are exactly one shard-population of the logical store.
  return std::hash<UserId>{}(user) % groups_.size();
}

const U1Backend& ParallelSimulation::backend(std::size_t group) const {
  if (group >= groups_.size())
    throw std::out_of_range("ParallelSimulation::backend: bad group");
  return *groups_[group]->backend;
}

std::vector<const MetadataStore*> ParallelSimulation::stores() const {
  std::vector<const MetadataStore*> out;
  out.reserve(groups_.size());
  for (const auto& grp : groups_) out.push_back(&grp->backend->store());
  return out;
}

const ContentRegistry& ParallelSimulation::contents() const noexcept {
  return shared_dedup_->global();
}

void ParallelSimulation::build_groups() {
  const std::size_t n_groups = config_.backend.shards;
  shared_dedup_ = std::make_unique<SharedDedup>(n_groups);
  groups_.reserve(n_groups);
  for (std::size_t g = 0; g < n_groups; ++g) {
    auto grp = std::make_unique<Group>();
    BackendConfig backend_cfg = config_.backend;
    backend_cfg.seed = group_mix(config_.seed ^ 0xbac9, g);
    // Interleaved session-id namespaces (g+1, g+1+G, ...): every id in
    // the merged trace is globally unique, so analyzers keyed by
    // SessionId never conflate sessions from different groups. Depends
    // only on the group count, never on the thread count.
    backend_cfg.session_id_base = g + 1;
    backend_cfg.session_id_stride = n_groups;
    grp->backend = std::make_unique<U1Backend>(backend_cfg, grp->trace);
    grp->pool_view = std::make_unique<ContentPoolView>(
        *content_pool_, group_mix(config_.seed ^ 0xb10b, g));
    grp->rng = rng_.fork();
    grp->queue.set_impl(queue_impl_);
    // Deferred symbol interning: labels get dense group-local ids during
    // the epoch (no lock, no cross-group coordination) and are merged
    // into the global table in group-index order at each barrier — the
    // global ids depend only on the seed, never on the thread count.
    grp->backend->symbols().set_deferred(true);
    if (!fault_schedule_.empty()) {
      // Same schedule everywhere; the injector's probabilistic draws are
      // group-local, so they depend only on (config, g) — never on thread
      // interleaving. Matches the sequential engine's `fseed ^ 0x1f4a7`.
      grp->injector = std::make_unique<FaultInjector>(
          fault_schedule_,
          group_mix(effective_fault_seed(config_) ^ 0x1f4a7, g));
      grp->backend->set_fault_injector(grp->injector.get());
    }
    grp->shards.reserve(analyzers_.size());
    for (ShardedAnalyzer* analyzer : analyzers_)
      grp->shards.push_back(analyzer->make_shard());
    groups_.push_back(std::move(grp));
  }
  slots_.clear();
  for (std::size_t k = 0; k < flush_depth_; ++k) {
    auto slot = std::make_unique<FlushSlot>();
    slot->chunks.resize(n_groups);
    slot->sym_map.resize(n_groups);
    slot->new_syms.resize(n_groups);
    slots_.push_back(std::move(slot));
  }
  purge_seen_.resize(n_groups);
  purge_mail_.reset(n_groups, /*lane_capacity=*/64);
  active_groups_.resize(n_groups);
  std::iota(active_groups_.begin(), active_groups_.end(), std::size_t{0});
}

void ParallelSimulation::register_population() {
  home_.resize(config_.users);
  root_volume_.resize(config_.users);
  for (auto& grp : groups_)
    grp->agents.reserve(config_.users / groups_.size() + 8);
  for (std::size_t i = 0; i < config_.users; ++i) {
    const UserId uid{i + 1};
    const std::size_t g = group_of(uid);
    Group& grp = *groups_[g];
    const UserProfile profile = user_model_.sample(rng_);
    const UserAccount account = grp.backend->register_user(uid, -kDay);
    WorkloadContext ctx;
    ctx.files = &file_model_;
    ctx.contents = grp.pool_view.get();
    ctx.users = &user_model_;
    ctx.transitions = &transition_model_;
    ctx.diurnal = &diurnal_;
    ctx.bursts = &bursts_;
    home_[i] = HomeRef{g, grp.agents.size()};
    root_volume_[i] = account.root_volume;
    grp.agents.push_back(std::make_unique<ClientAgent>(uid, profile, account,
                                                       ctx, rng_.fork()));
  }
}

void ParallelSimulation::grant_shares() {
  // Sharing relationships (1.8% of users): owner shares the root volume
  // with a random peer. When the peer lives in another group, the owner
  // is ghost-registered in the peer's back-end so the grant resolves
  // in-store — the documented cost is one extra (idle) user+root volume
  // there, never any cross-group traffic during the run.
  for (std::size_t i = 0; i < config_.users; ++i) {
    const ClientAgent& owner =
        *groups_[home_[i].group]->agents[home_[i].index];
    if (!owner.profile().sharer || config_.users < 2) continue;
    std::size_t peer = rng_.below(config_.users);
    if (peer == i) peer = (peer + 1) % config_.users;
    const UserId owner_uid{i + 1};
    const UserId peer_uid{peer + 1};
    const std::size_t gp = group_of(peer_uid);
    if (gp == home_[i].group) {
      groups_[gp]->backend->share_volume(owner_uid, root_volume_[i], peer_uid,
                                         -kDay);
    } else {
      const UserAccount ghost =
          groups_[gp]->backend->register_user(owner_uid, -kDay);
      groups_[gp]->backend->share_volume(owner_uid, ghost.root_volume,
                                         peer_uid, -kDay);
    }
  }
}

void ParallelSimulation::bootstrap_phase() {
  // Pre-trace history, sequential. The shared registry and pool are LIVE
  // here (proxies point straight at the global structures), so bootstrap
  // gets full cross-group dedup exactly like the sequential engine.
  for (auto& grp : groups_) {
    grp->backend->set_dedup_proxy(&shared_dedup_->global());
    grp->pool_view->set_live(content_pool_.get());
  }
  for (std::size_t i = 0; i < config_.users; ++i) {
    ClientAgent& agent = *groups_[home_[i].group]->agents[home_[i].index];
    double mean = config_.bootstrap_files_mean;
    switch (agent.profile().user_class) {
      case UserClass::kOccasional: mean *= 0.4; break;
      case UserClass::kUploadOnly: mean *= 2.0; break;
      case UserClass::kDownloadOnly: mean *= 1.5; break;
      case UserClass::kHeavy: mean *= 4.0; break;
    }
    double n = -mean * std::log(1.0 - rng_.uniform());
    if (rng_.chance(0.025)) n *= 40.0;
    const auto files = static_cast<std::size_t>(std::min(n, 4000.0));
    const SimTime when =
        -4 * kDay + static_cast<SimTime>(rng_.below(
                        static_cast<std::uint64_t>(2 * kDay)));
    agent.bootstrap(*groups_[home_[i].group]->backend, when, files);
    report_.bootstrap_files += files;
    // Worker mode: a remote user's bootstrap matters only for its global
    // side effects (master/agent RNG draws, dedup registry and content
    // pool state, trace-window-invariant counters). The node rows, S3
    // objects and trace records it just produced in the remote group are
    // per-process dead weight — shed them NOW, per user, instead of
    // letting all G groups' bootstrap state coexist until
    // release_remote_groups(): that coexistence is what used to pin the
    // worker RSS peak at ~the single-process figure. Local groups (and
    // the in-process engine, where every group is local) are untouched,
    // so the packed chunk-0 records and every published symbol stay
    // bit-identical.
    if (worker_mode() && !group_local(home_[i].group)) {
      Group& grp = *groups_[home_[i].group];
      grp.backend->shed_remote_user_state(UserId{i + 1});
      agent.shed_namespace_mirror();
      shed_scratch_.clear();
      grp.trace.swap_records(shed_scratch_);
    }
  }
  // Freeze: from here on workers only see epoch overlays.
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    groups_[g]->backend->set_dedup_proxy(&shared_dedup_->overlay(g));
    groups_[g]->pool_view->set_live(nullptr);
  }
}

std::vector<double> ParallelSimulation::estimate_group_setup_weights(
    const SimulationConfig& config) {
  // Mirror of the master-RNG consumption in build_groups (G forks),
  // register_population (sample + fork per user), grant_shares (one
  // below() per sharer) and bootstrap_phase (uniform, chance, below per
  // user) — keep the draw sequence in lockstep with those functions.
  // The realized bootstrap file count is the dominant share of a
  // group's end-of-run footprint; the activity term covers the
  // trace-window growth on top of it.
  const std::size_t n_groups = config.backend.shards;
  std::vector<double> weights(n_groups, 0.0);
  if (n_groups == 0 || config.users == 0) return weights;
  Rng rng(config.seed);
  for (std::size_t g = 0; g < n_groups; ++g) (void)rng.fork();
  const UserModel model(config.user_model);
  std::vector<UserProfile> profiles;
  profiles.reserve(config.users);
  for (std::size_t i = 0; i < config.users; ++i) {
    profiles.push_back(model.sample(rng));
    (void)rng.fork();  // the agent's private stream
  }
  for (std::size_t i = 0; i < config.users; ++i) {
    if (!profiles[i].sharer || config.users < 2) continue;
    (void)rng.below(config.users);
  }
  /// Expected trace-window files per (session/day × day) unit, relative
  /// to one bootstrap file — a balance heuristic, not a contract.
  constexpr double kRunActivityWeight = 0.6;
  for (std::size_t i = 0; i < config.users; ++i) {
    const std::size_t g = std::hash<UserId>{}(UserId{i + 1}) % n_groups;
    double mean = config.bootstrap_files_mean;
    switch (profiles[i].user_class) {
      case UserClass::kOccasional: mean *= 0.4; break;
      case UserClass::kUploadOnly: mean *= 2.0; break;
      case UserClass::kDownloadOnly: mean *= 1.5; break;
      case UserClass::kHeavy: mean *= 4.0; break;
    }
    double n = -mean * std::log(1.0 - rng.uniform());
    if (rng.chance(0.025)) n *= 40.0;
    (void)rng.below(static_cast<std::uint64_t>(2 * kDay));
    weights[g] += std::min(n, 4000.0) +
                  kRunActivityWeight * profiles[i].activity *
                      profiles[i].sessions_per_day * config.days;
  }
  // DDoS attacks pin thousands of bot sessions — and attack-hour epoch
  // chunks — on the abused account's home group for the response
  // window. The schedule and the account ids are deterministic, so the
  // planner can keep the Jan-16 (245x) group out of the heaviest slice.
  if (config.enable_ddos) {
    /// Worker-RSS cost of one bot operation relative to one bootstrap
    /// file (records + session churn vs node + mirror + records).
    constexpr double kAttackOpWeight = 0.2;
    const double population_scale =
        static_cast<double>(config.users) / 10000.0;
    const auto schedule =
        paper_attack_schedule(config.ddos_bot_scale * population_scale);
    for (std::size_t a = 0; a < schedule.size(); ++a) {
      const std::size_t g =
          std::hash<UserId>{}(UserId{1000000 + a}) % n_groups;
      const DdosAttackSpec& spec = schedule[a];
      const double hours =
          static_cast<double>(spec.response_delay) / static_cast<double>(kHour);
      weights[g] += kAttackOpWeight * spec.bots * spec.connects_per_hour *
                    hours * (1.0 + spec.downloads_per_connection);
    }
  }
  return weights;
}

void ParallelSimulation::schedule_population_start() {
  for (auto& grp : groups_) grp->queue.reserve(grp->agents.size() + 16);
  for (std::size_t i = 0; i < config_.users; ++i) {
    const HomeRef home = home_[i];
    const ClientAgent& agent = *groups_[home.group]->agents[home.index];
    const SimTime first =
        diurnal_.next_arrival(0, agent.profile().sessions_per_day, rng_);
    // Worker mode: the arrival draw above must happen for EVERY user (it
    // is on the master RNG stream), but only local groups get the event.
    if (group_local(home.group))
      groups_[home.group]->queue.push(first, Ev{Ev::Kind::kAgent, home.index});
  }
  for (std::size_t g = 0; g < groups_.size(); ++g)
    if (group_local(g))
      groups_[g]->queue.push(kHour, Ev{Ev::Kind::kMaintenance, 0});
  for (std::size_t i = 0; i < fault_schedule_.size(); ++i) {
    // Every group gets every edge: fleet/window state must flip in every
    // back-end replica. Only group 0 emits the kFault trace record.
    for (std::size_t g = 0; g < groups_.size(); ++g)
      if (group_local(g))
        groups_[g]->queue.push(fault_schedule_[i].at, Ev{Ev::Kind::kFault, i});
  }
  if (config_.enable_ddos) {
    const double population_scale =
        static_cast<double>(config_.users) / 10000.0;
    const auto schedule =
        paper_attack_schedule(config_.ddos_bot_scale * population_scale);
    for (std::size_t a = 0; a < schedule.size(); ++a) {
      AttackRuntime rt;
      rt.spec = schedule[a];
      rt.account = UserId{1000000 + a};
      // The abused account pins the whole attack to one group: every bot
      // operation targets that single account, so the traffic is
      // group-local by construction.
      rt.group = group_of(rt.account);
      attacks_.push_back(rt);  // every process keeps the full table
      if (group_local(rt.group))
        groups_[rt.group]->queue.push(schedule[a].start,
                                      Ev{Ev::Kind::kDdosStart, a});
    }
  }
}

void ParallelSimulation::launch_attack(Group& grp, std::size_t attack_index,
                                       SimTime now) {
  AttackRuntime& attack = attacks_[attack_index];
  ++grp.ddos_attacks;
  const UserAccount acc = grp.backend->register_user(attack.account, now);
  const auto conn = grp.backend->connect(attack.account, now);
  if (conn.ok()) {
    const auto mk = grp.backend->make_file(conn.session, acc.root_volume,
                                           acc.root_dir, "payload", "avi",
                                           conn.end);
    SimTime t = mk.end;
    if (mk.ok()) {
      t = grp.backend
              ->upload(conn.session, mk.node,
                       Sha1::of("ddos-payload-" +
                                std::to_string(attack_index)),
                       attack.spec.payload_bytes, false, mk.end)
              .end;
      attack.payload_node = mk.node;
    }
    grp.backend->disconnect(conn.session, t + kMinute);
  }
  const std::size_t first_bot = grp.bots.size();
  for (std::uint32_t b = 0; b < attack.spec.bots; ++b) {
    Bot bot;
    bot.attack = attack_index;
    grp.bots.push_back(bot);
    const SimTime arrive =
        now + static_cast<SimTime>(grp.rng.below(30ull * kMinute));
    grp.queue.push(arrive, Ev{Ev::Kind::kBot, first_bot + b});
  }
  if (!config_.auto_countermeasures) {
    grp.queue.push(now + attack.spec.response_delay,
                   Ev{Ev::Kind::kDdosResponse, attack_index});
  }
}

void ParallelSimulation::respond_to_attack(std::size_t attack_index,
                                           SimTime now) {
  AttackRuntime& attack = attacks_[attack_index];
  attack.purged = true;
  groups_[attack.group]->backend->admin_purge_user(attack.account, now);
}

SimTime ParallelSimulation::bot_wake(Group& grp, std::size_t bot_index,
                                     SimTime now) {
  Bot& bot = grp.bots[bot_index];
  const AttackRuntime& attack = attacks_[bot.attack];

  if (bot.connected && !grp.backend->session_open(bot.session)) {
    bot.connected = false;
    return now + from_seconds(grp.rng.uniform(30.0, 120.0));
  }
  if (bot.connected) {
    for (std::uint32_t d = 0; d < attack.spec.downloads_per_connection; ++d) {
      if (attack.payload_node.is_nil()) break;
      const auto res =
          grp.backend->download(bot.session, attack.payload_node, now);
      now = res.end;
      if (!res.ok()) break;
    }
    grp.backend->disconnect(bot.session, now);
    bot.connected = false;
    const double gap_s = 3600.0 / attack.spec.connects_per_hour *
                         grp.rng.uniform(0.5, 1.5);
    return now + from_seconds(gap_s);
  }

  const auto conn = grp.backend->connect(attack.account, now);
  if (!conn.ok()) {
    ++bot.failures;
    if (attack.purged && bot.failures > 2) return 0;  // give up
    return conn.end + from_seconds(grp.rng.uniform(30.0, 300.0));
  }
  bot.failures = 0;
  bot.connected = true;
  bot.session = conn.session;
  return conn.end + from_seconds(grp.rng.uniform(1.0, 20.0));
}

void ParallelSimulation::run_group_epoch(std::size_t group, SimTime limit) {
  Group& grp = *groups_[group];
  while (!grp.queue.empty() && grp.queue.next_time() < limit) {
    const auto event = grp.queue.pop();
    const SimTime now = event.t;
    ++grp.epoch_events;
    switch (event.payload.kind) {
      case Ev::Kind::kAgent: {
        ++grp.agent_wakeups;
        const SimTime next =
            grp.agents[event.payload.index]->on_wake(*grp.backend, now);
        if (next > now) grp.queue.push(next, event.payload);
        break;
      }
      case Ev::Kind::kBot: {
        const SimTime next = bot_wake(grp, event.payload.index, now);
        if (next > now) grp.queue.push(next, event.payload);
        break;
      }
      case Ev::Kind::kMaintenance:
        grp.backend->maintenance(now);
        grp.queue.push(now + kHour, event.payload);
        break;
      case Ev::Kind::kDdosStart:
        launch_attack(grp, event.payload.index, now);
        break;
      case Ev::Kind::kDdosResponse:
        respond_to_attack(event.payload.index, now);
        break;
      case Ev::Kind::kFault:
        grp.backend->apply_fault(fault_schedule_[event.payload.index], now,
                                 /*emit_record=*/group == 0);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Flush ring: stage A (sort + remap + plan + guard) / stage B (writes).

void ParallelSimulation::fill_slot(FlushSlot& slot) {
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (!group_local(g)) continue;  // remote groups: freed, chunk stays empty
    // Deterministic symbol merge: each group's new local symbols enter
    // the global table here, in group-index order with the workers
    // parked — the global ids are a pure function of the seed. The
    // mapping snapshot lets stage A remap this chunk while the next
    // epoch's compute keeps interning into the same group.
    GroupSymbols& symbols = groups_[g]->backend->symbols();
    const std::size_t prev_published = symbols.mapping().size();
    symbols.publish();
    slot.sym_map[g] = symbols.mapping();
    if (peer_ != nullptr) {
      // Capture the symbols this publish added, with their strings: the
      // peer ships them so the coordinator can replay the global-table
      // growth in (chunk, group) order — the exact order the in-process
      // engine interns in — and reproduce the oracle's symbol ids.
      auto& fresh = slot.new_syms[g];
      fresh.clear();
      for (std::size_t i = prev_published; i < slot.sym_map[g].size(); ++i)
        fresh.emplace_back(
            slot.sym_map[g][i],
            std::string(global_symbols().resolve(slot.sym_map[g][i])));
    }
    // slot.chunks[g] was cleared (capacity kept) by the previous stage
    // B, so this swap hands the group an empty, pre-sized buffer — in
    // steady state the ring allocates nothing.
    groups_[g]->trace.swap_records(slot.chunks[g]);
    records_flushed_ += slot.chunks[g].size();
  }
}

void ParallelSimulation::prep_chunk(FlushSlot& slot, std::size_t group) {
  std::vector<TraceRecord>& chunk = slot.chunks[group];
  sort_trace_chunk(chunk);
  const std::vector<Symbol>& map = slot.sym_map[group];
  for (TraceRecord& r : chunk) r.label = map[r.label];
  // In-worker analyzer fan-out: this thread owns the chunk exclusively
  // and stage A instances never overlap, so a group's shards see their
  // per-group stream sorted, globally-labelled, in epoch order — a
  // stream that depends only on the seed, never on the thread count.
  for (auto& shard : groups_[group]->shards)
    shard->consume(chunk.data(), chunk.size());
}

void ParallelSimulation::run_stage_a(FlushSlot& slot) {
  const auto t0 = Clock::now();
  if (!sort_workers_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(sort_mu_);
      sort_slot_ = &slot;
      sort_next_.store(0, std::memory_order_relaxed);
      sort_remaining_ = groups_.size();
      ++sort_gen_;
    }
    sort_cv_.notify_all();
    // Participate: claim whole chunks alongside the helpers. Chunk
    // ownership is exclusive per claim, so parallel prepping cannot
    // affect the merged stream.
    std::size_t done = 0;
    for (std::size_t g;
         (g = sort_next_.fetch_add(1, std::memory_order_relaxed)) <
         groups_.size();) {
      prep_chunk(slot, g);
      ++done;
    }
    std::unique_lock<std::mutex> lock(sort_mu_);
    sort_remaining_ -= done;
    sort_cv_.wait(lock, [this] { return sort_remaining_ == 0; });
  } else {
    for (std::size_t g = 0; g < groups_.size(); ++g) prep_chunk(slot, g);
  }
  if (peer_ != nullptr) {
    // Worker mode: the chunks ship whole to the peer's shard stream in
    // stage B, so no local k-way merge is needed. The merge plan is
    // built only to order the guard feed — the same (t, group) contract
    // order the coordinator's cluster-wide merge produces per worker —
    // and the feed itself is the exact record subset AnomalyGuard::
    // observe acts on (session auth/open events, post-bootstrap).
    if (collect_feed_) {
      build_merge_plan(slot.chunks, slot.plan);
      for (const MergeRef ref : slot.plan) {
        const TraceRecord& r = slot.chunks[ref.group][ref.offset];
        if (r.t < 0 || r.type != RecordType::kSession) continue;
        if (r.session_event != SessionEvent::kAuthRequest &&
            r.session_event != SessionEvent::kOpen)
          continue;
        feed_buf_.push_back(
            GuardFeedEntry{r.t, static_cast<std::uint64_t>(r.user.value),
                           static_cast<std::uint8_t>(r.session_event)});
      }
      slot.plan.clear();
    }
    phases_.flush_s += secs_since(t0);
    return;
  }
  // Analysis-only runs with no guard skip the k-way merge plan: nothing
  // consumes the merged order (the shards already ate the per-group
  // streams, and stage B over an empty plan writes nothing). The guard,
  // when present, still needs the merged stream so its purge schedule
  // stays byte-identical to the trace-writing run.
  if (analysis_only_ && !guard_) {
    slot.plan.clear();
    phases_.flush_s += secs_since(t0);
    return;
  }
  build_merge_plan(slot.chunks, slot.plan);
  // Guard scan over the merged permutation — the same total order the
  // writer will emit, so detection points match the sequential engine.
  if (guard_) {
    for (const MergeRef ref : slot.plan) {
      const TraceRecord& r = slot.chunks[ref.group][ref.offset];
      if (r.t < 0) continue;
      if (const auto culprit = guard_->observe(r)) {
        const std::size_t g = group_of(*culprit);
        if (purge_seen_[g].insert(*culprit).second)
          purge_mail_.post(g, *culprit);
      }
    }
  }
  phases_.flush_s += secs_since(t0);
}

void ParallelSimulation::run_stage_b(FlushSlot& slot) {
  const auto t0 = Clock::now();
  if (peer_ != nullptr) {
    // Worker mode: the local groups' sorted, globally-labelled segments
    // go to the peer's shard stream (FIFO in epoch order — the writer
    // thread preserves submission order); the coordinator k-way merges
    // them at readback.
    peer_->write_chunk(slot.chunks, slot.new_syms, local_first_, local_count_);
    for (auto& chunk : slot.chunks) chunk.clear();
    for (auto& syms : slot.new_syms) syms.clear();
    slot.plan.clear();
    phases_.write_s += secs_since(t0);
    return;
  }
  // The merge permutation is long runs of consecutive offsets within one
  // group (each run is one group's records between two other-group
  // timestamps); hand each maximal run to the sink as a single batch so
  // the per-record virtual call disappears from the write path.
  const MergeRef* refs = slot.plan.data();
  const std::size_t n = slot.plan.size();
  for (std::size_t i = 0; i < n;) {
    const std::uint32_t group = refs[i].group;
    const std::uint32_t first = refs[i].offset;
    std::size_t j = i + 1;
    while (j < n && refs[j].group == group &&
           refs[j].offset == refs[j - 1].offset + 1)
      ++j;
    sink_->append_batch(&slot.chunks[group][first], j - i);
    i = j;
  }
  for (auto& chunk : slot.chunks) chunk.clear();
  slot.plan.clear();
  phases_.write_s += secs_since(t0);
}

void ParallelSimulation::sort_worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(sort_mu_);
  for (;;) {
    sort_cv_.wait(lock,
                  [&] { return sort_stop_ || sort_gen_ != seen; });
    if (sort_stop_) return;
    seen = sort_gen_;
    FlushSlot* slot = sort_slot_;
    lock.unlock();
    std::size_t done = 0;
    for (std::size_t g;
         (g = sort_next_.fetch_add(1, std::memory_order_relaxed)) <
         groups_.size();) {
      prep_chunk(*slot, g);
      ++done;
    }
    lock.lock();
    sort_remaining_ -= done;
    if (sort_remaining_ == 0) sort_cv_.notify_all();
  }
}

void ParallelSimulation::start_flush_pipeline() {
  flusher_stop_ = false;
  writer_stop_ = false;
  sort_stop_ = false;
  stage_a_slot_ = nullptr;
  flusher_ = std::thread([this] { flusher_loop(); });
  writer_ = std::thread([this] { writer_loop(); });
  // A few sort helpers (the flusher itself participates): per-group
  // sorts dominate stage A, and a handful of threads already hides them
  // behind the compute phase.
  const std::size_t helpers =
      std::min<std::size_t>(3, groups_.size() > 0 ? groups_.size() - 1 : 0);
  sort_workers_.reserve(helpers);
  for (std::size_t i = 0; i < helpers; ++i)
    sort_workers_.emplace_back([this] { sort_worker_loop(); });
}

void ParallelSimulation::stop_flush_pipeline() {
  if (flusher_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(flush_mu_);
      flusher_stop_ = true;
      writer_stop_ = true;
    }
    flush_cv_.notify_all();
    flusher_.join();
    writer_.join();
    flusher_stop_ = false;
    writer_stop_ = false;
  }
  if (!sort_workers_.empty()) {
    {
      const std::lock_guard<std::mutex> lock(sort_mu_);
      sort_stop_ = true;
    }
    sort_cv_.notify_all();
    for (auto& worker : sort_workers_) worker.join();
    sort_workers_.clear();
    sort_stop_ = false;
  }
}

void ParallelSimulation::flusher_loop() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  for (;;) {
    flush_cv_.wait(lock,
                   [this] { return stage_a_slot_ != nullptr || flusher_stop_; });
    if (stage_a_slot_ != nullptr) {
      FlushSlot* slot = stage_a_slot_;
      lock.unlock();
      std::exception_ptr error;
      try {
        run_stage_a(*slot);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error) {
        // A half-prepped slot must not reach the writer — its plan may
        // be stale. The coordinator sees flush_error_ at the next join.
        if (!flush_error_) flush_error_ = error;
        slot->plan.clear();
        slot->state = FlushSlot::State::kFree;
      } else {
        slot->state = FlushSlot::State::kStageB;
        write_queue_.push_back(slot);
      }
      stage_a_slot_ = nullptr;
      flush_cv_.notify_all();
      continue;
    }
    if (flusher_stop_) return;
  }
}

void ParallelSimulation::writer_loop() {
  std::unique_lock<std::mutex> lock(flush_mu_);
  for (;;) {
    flush_cv_.wait(lock,
                   [this] { return !write_queue_.empty() || writer_stop_; });
    if (!write_queue_.empty()) {
      // FIFO by submission — epoch order, for every K.
      FlushSlot* slot = write_queue_.front();
      write_queue_.pop_front();
      lock.unlock();
      std::exception_ptr error;
      try {
        run_stage_b(*slot);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error && !flush_error_) flush_error_ = error;
      slot->state = FlushSlot::State::kFree;
      flush_cv_.notify_all();
      continue;
    }
    if (writer_stop_) return;  // queue drained first — see the predicate
  }
}

ParallelSimulation::FlushSlot& ParallelSimulation::acquire_slot() {
  FlushSlot& slot = *slots_[slot_cursor_];
  slot_cursor_ = (slot_cursor_ + 1) % slots_.size();
  if (!writer_.joinable()) return slot;  // inline mode: always free
  const auto t0 = Clock::now();
  bool failed = false;
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    flush_cv_.wait(lock, [&] {
      return slot.state == FlushSlot::State::kFree || flush_error_ != nullptr;
    });
    failed = flush_error_ != nullptr;
  }
  phases_.ring_stall_s += secs_since(t0);
  if (failed) rethrow_flush_error();
  return slot;
}

void ParallelSimulation::submit_flush(FlushSlot& slot) {
  if (!flusher_.joinable()) {
    // Inline (oracle) mode: same work at the same pipeline points — the
    // flush of epoch E still completes before the purges it detected
    // are delivered at barrier E+1, and the writes retire in the same
    // FIFO order, so the observable stream is identical.
    run_stage_a(slot);
    run_stage_b(slot);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(flush_mu_);
    slot.state = FlushSlot::State::kStageA;
    stage_a_slot_ = &slot;
  }
  flush_cv_.notify_all();
}

void ParallelSimulation::join_flusher() {
  if (!flusher_.joinable()) return;
  bool failed = false;
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    flush_cv_.wait(lock, [this] { return stage_a_slot_ == nullptr; });
    failed = flush_error_ != nullptr;
  }
  if (failed) rethrow_flush_error();
}

void ParallelSimulation::drain_writer() {
  if (!writer_.joinable()) return;
  bool failed = false;
  {
    std::unique_lock<std::mutex> lock(flush_mu_);
    flush_cv_.wait(lock, [this] {
      if (flush_error_) return true;
      if (stage_a_slot_ != nullptr || !write_queue_.empty()) return false;
      for (const auto& slot : slots_)
        if (slot->state != FlushSlot::State::kFree) return false;
      return true;
    });
    failed = flush_error_ != nullptr;
  }
  if (failed) rethrow_flush_error();
}

void ParallelSimulation::rethrow_flush_error() {
  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(flush_mu_);
    error = flush_error_;
    flush_error_ = nullptr;
  }
  stop_flush_pipeline();
  stop_workers();
  std::rethrow_exception(error);
}

void ParallelSimulation::deliver_purges(SimTime when) {
  purge_mail_.drain([this, when](std::size_t g, UserId culprit) {
    if (!groups_[g]->backend) return;  // distributed: not this process's group
    groups_[g]->backend->admin_purge_user(culprit, when);
    ++report_.auto_purges;
    for (auto& attack : attacks_) {
      if (attack.account == culprit && !attack.purged) {
        attack.purged = true;
        if (report_.first_auto_response_delay == 0) {
          report_.first_auto_response_delay = when - attack.spec.start;
          first_purge_barrier_ = barrier_seq_;
          first_purge_group_ = g;
        }
      }
    }
  });
  for (auto& seen : purge_seen_) seen.clear();
}

void ParallelSimulation::merge_epoch(SimTime epoch_end) {
  const auto t0 = Clock::now();
  // Stage A of the previous epoch must have retired: its purge posts
  // are about to deliver, on the same barrier schedule for every K and
  // every thread count. With the compute phase longer than stage A this
  // wait is ~zero — the point of the pipeline. Stage B (sink writes)
  // is NOT waited on here; it may lag up to K epochs.
  join_flusher();
  const auto t1 = Clock::now();
  phases_.flush_stall_s += std::chrono::duration<double>(t1 - t0).count();
  if (peer_ != nullptr) {
    exchange_barrier(/*tail=*/false);
  } else {
    shared_dedup_->merge_epoch(
        [this](const ContentInfo&) { ++cross_group_dead_blobs_; });
    for (auto& grp : groups_) content_pool_->absorb(*grp->pool_view);
  }
  // Cross-group commands detected in the previous epoch's merged stream,
  // in group-index order. Their trace records join the chunk collected
  // below (same barrier), stamped with this barrier's epoch_end.
  deliver_purges(epoch_end);
  const auto t2 = Clock::now();
  phases_.merge_s += std::chrono::duration<double>(t2 - t1).count();
  FlushSlot& slot = acquire_slot();  // ring_stall_s while all K busy
  const auto t3 = Clock::now();
  fill_slot(slot);
  phases_.merge_s += secs_since(t3);
  submit_flush(slot);
}

// ---------------------------------------------------------------------------
// Distributed worker mode.

void ParallelSimulation::release_remote_groups() {
  active_groups_.clear();
  for (std::size_t g = 0; g < groups_.size(); ++g) {
    if (group_local(g)) {
      active_groups_.push_back(g);
      continue;
    }
    // The remote group's deterministic contribution is complete (master
    // RNG draws, bootstrap registry/pool state); its runtime state is
    // per-process dead weight from here on — this free is where the
    // ~1/P per-process peak RSS comes from. The Group shell stays so
    // group indexing and the barrier replay order are unchanged.
    Group& grp = *groups_[g];
    grp.agents.clear();
    grp.agents.shrink_to_fit();
    grp.bots.clear();
    grp.backend.reset();
    grp.pool_view.reset();
    grp.injector.reset();
    grp.shards.clear();
    std::vector<TraceRecord> dropped;
    grp.trace.swap_records(dropped);  // remote bootstrap records
  }
}

void ParallelSimulation::exchange_barrier(bool tail) {
  std::vector<std::vector<std::uint8_t>> logs;
  std::vector<std::vector<std::uint8_t>> deltas;
  if (!tail) {
    logs.reserve(local_count_);
    deltas.reserve(local_count_);
    for (std::size_t i = 0; i < local_count_; ++i) {
      const std::size_t g = local_first_ + i;
      logs.push_back(shared_dedup_->extract_log(g));
      deltas.push_back(groups_[g]->pool_view->extract_delta());
    }
  }
  EpochPeer::BarrierIn in =
      peer_->exchange(barrier_seq_++, tail, std::move(logs), std::move(deltas),
                      std::move(feed_buf_));
  feed_buf_.clear();
  // Replay the cluster-wide epoch in group-index order — the same order
  // the in-process merge applies — so this process's global registry
  // and content-pool replicas match every other process byte for byte.
  for (const auto& log : in.dedup_logs)
    shared_dedup_->apply_log(
        log, [this](const ContentInfo&) { ++cross_group_dead_blobs_; });
  for (const auto& delta : in.pool_deltas) content_pool_->absorb_delta(delta);
  for (const MailboxEntry& e : in.purges)
    purge_mail_.post(static_cast<std::size_t>(e.lane), UserId{e.value});
}

// ---------------------------------------------------------------------------
// Worker pool + sticky scheduling.

void ParallelSimulation::prepare_epoch_plan(std::size_t workers) {
  if (scheduling_ != Scheduling::kSticky) return;
  // Cost weights: last epoch's per-group event counts — a seed-
  // deterministic signal of where the simulation currently burns time
  // (first epoch: the scheduled queue sizes). The weights steer only the
  // wall clock; any plan yields the identical trace.
  std::vector<std::uint64_t> cost(groups_.size());
  for (const std::size_t g : active_groups_) {
    cost[g] = plan_.empty() ? groups_[g]->queue.size() + 1
                            : groups_[g]->epoch_events + 1;
    groups_[g]->epoch_events = 0;
  }
  // LPT greedy candidate: heaviest group first onto the least-loaded
  // worker. Cheap (G log G, G = shard count), so recompute it every
  // epoch and use its makespan as the *achievable* baseline — comparing
  // against total/workers would force a rebuild whenever G/workers
  // doesn't divide evenly, which is exactly the common case.
  std::vector<std::size_t> order = active_groups_;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (cost[a] != cost[b]) return cost[a] > cost[b];
    return a < b;
  });
  std::vector<std::vector<std::size_t>> candidate(workers);
  std::vector<std::uint64_t> load(workers, 0);
  for (const std::size_t g : order) {
    const std::size_t w = static_cast<std::size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    candidate[w].push_back(g);
    load[w] += cost[g];
  }
  const std::uint64_t candidate_max =
      *std::max_element(load.begin(), load.end());
  if (!plan_.empty()) {
    // Sticky hysteresis: moving a group evicts every cache line it
    // owns, so only *sustained* drift justifies a repartition. The
    // makespan excess over the LPT baseline is EMA-smoothed, so one
    // bursty epoch (a DDoS ramp, a fault window) cannot trigger a
    // rebuild, and a floor of kPlanRebuildFloor epochs between rebuilds
    // bounds the churn even under persistent imbalance. Every input is
    // seed-deterministic, so the rebuild count is too (tests pin it).
    std::uint64_t current_max = 0;
    for (const auto& assigned : plan_) {
      std::uint64_t worker_load = 0;
      for (const std::size_t g : assigned) worker_load += cost[g];
      current_max = std::max(current_max, worker_load);
    }
    const double drift =
        candidate_max > 0 ? static_cast<double>(current_max) /
                                    static_cast<double>(candidate_max) -
                                1.0
                          : 0.0;
    plan_drift_ema_ += kPlanDriftAlpha * (drift - plan_drift_ema_);
    ++plan_epochs_since_rebuild_;
    if (plan_epochs_since_rebuild_ < kPlanRebuildFloor) return;
    if (plan_drift_ema_ <= kPlanDriftThreshold) return;
  }
  plan_ = std::move(candidate);
  ++phases_.plan_rebuilds;
  plan_drift_ema_ = 0.0;
  plan_epochs_since_rebuild_ = 0;
}

void ParallelSimulation::start_workers(std::size_t n) {
  epoch_start_ = std::make_unique<std::barrier<>>(
      static_cast<std::ptrdiff_t>(n + 1));
  epoch_done_ = std::make_unique<std::barrier<>>(
      static_cast<std::ptrdiff_t>(n + 1));
  stop_.store(false, std::memory_order_relaxed);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
    if (pin_workers_) pin_thread_to_core(workers_.back(), i);
  }
}

void ParallelSimulation::worker_loop(std::size_t id) {
  for (;;) {
    epoch_start_->arrive_and_wait();
    if (stop_.load(std::memory_order_acquire)) return;
    try {
      if (scheduling_ == Scheduling::kSticky) {
        for (const std::size_t g : plan_[id]) run_group_epoch(g, epoch_limit_);
      } else {
        for (std::size_t idx;
             (idx = next_group_.fetch_add(1, std::memory_order_relaxed)) <
             active_groups_.size();) {
          run_group_epoch(active_groups_[idx], epoch_limit_);
        }
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(worker_error_mu_);
      if (!worker_error_) worker_error_ = std::current_exception();
    }
    epoch_done_->arrive_and_wait();
  }
}

void ParallelSimulation::run_epoch_pooled(SimTime limit) {
  epoch_limit_ = limit;
  next_group_.store(0, std::memory_order_relaxed);
  epoch_start_->arrive_and_wait();  // release the workers
  epoch_done_->arrive_and_wait();   // the epoch barrier
  if (worker_error_) {
    stop_flush_pipeline();
    stop_workers();
    std::rethrow_exception(worker_error_);
  }
}

void ParallelSimulation::stop_workers() {
  if (workers_.empty()) return;
  stop_.store(true, std::memory_order_release);
  epoch_start_->arrive_and_wait();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  epoch_start_.reset();
  epoch_done_.reset();
}


namespace {
void rss_probe(const char* tag) {
  if (::getenv("U1SIM_RSS_DEBUG") == nullptr) return;
  rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  std::fprintf(stderr, "[rss pid=%d] %-18s peak=%ld KiB\n",
               static_cast<int>(::getpid()), tag,
               static_cast<long>(ru.ru_maxrss));
}
}  // namespace

SimulationReport ParallelSimulation::run() {
  if (ran_) throw std::logic_error("ParallelSimulation::run: already ran");
  ran_ = true;

  build_groups();
  register_population();
  rss_probe("registered");
  grant_shares();
  bootstrap_phase();
  rss_probe("bootstrap-done");
  {
    // Bootstrap records: merged and written once, pre-pipeline (the
    // threads are not running yet, so the slot runs both stages inline).
    FlushSlot& slot = acquire_slot();
    fill_slot(slot);
    run_stage_a(slot);
    run_stage_b(slot);
  }
  schedule_population_start();
  if (peer_ != nullptr) release_remote_groups();
  rss_probe("setup-released");

  const SimTime horizon = static_cast<SimTime>(config_.days) * kDay;
  const bool pooled = threads_ > 1 && active_groups_.size() > 1;
  const std::size_t n_workers = std::min(threads_, active_groups_.size());
  if (pooled) {
    start_workers(n_workers);
    start_flush_pipeline();
  }
  for (SimTime epoch_end = kHour;; epoch_end += kHour) {
    const SimTime limit = std::min(epoch_end, horizon);
    const auto t0 = Clock::now();
    if (pooled) {
      prepare_epoch_plan(n_workers);
      run_epoch_pooled(limit);
    } else {
      for (const std::size_t g : active_groups_) run_group_epoch(g, limit);
    }
    phases_.compute_s += secs_since(t0);
    merge_epoch(limit);
    ++phases_.epochs;
    if (limit >= horizon) break;
  }
  // Drain the pipeline tail: the last epoch's stage A is still in
  // flight; its purges deliver at the horizon, the writer retires every
  // queued epoch, and the records the purges emit get one final
  // synchronous flush (any purges *that* flush detects are applied too,
  // but — like the pre-ring engine — their records are not re-flushed).
  rss_probe("epochs-done");
  join_flusher();
  // Distributed tail barrier #1: the last epoch chunk's guard feed is
  // complete (stage A joined) — ship it, collect the final purges.
  if (peer_ != nullptr) exchange_barrier(/*tail=*/true);
  deliver_purges(horizon);
  drain_writer();
  {
    FlushSlot& slot = acquire_slot();  // all free after the drain
    fill_slot(slot);
    run_stage_a(slot);
    run_stage_b(slot);
  }
  // Distributed tail barrier #2: the purge-records chunk was scanned
  // inline above; any purges it triggers apply at the horizon, exactly
  // like the in-process tail.
  if (peer_ != nullptr) exchange_barrier(/*tail=*/true);
  deliver_purges(horizon);
  if (pooled) {
    stop_flush_pipeline();
    stop_workers();
  }

  // Fold the analyzer shards: group-index order, after every pipeline
  // thread has been joined. The shard set and the merge order are both
  // thread-count-independent, so the merged analyzer state is too.
  for (std::size_t a = 0; a < analyzers_.size(); ++a) {
    for (auto& grp : groups_) analyzers_[a]->merge_shard(*grp->shards[a]);
    analyzers_[a]->finish();
  }

  for (const auto& grp : groups_) {
    const auto queue_stats = grp->queue.calendar_stats();
    phases_.cal_rebuilds += queue_stats.rebuilds;
    phases_.cal_finds += queue_stats.finds;
    phases_.cal_scanned += queue_stats.scanned;
  }
  report_.users = config_.users;
  report_.horizon = horizon;
  for (const auto& ev : fault_schedule_)
    if (ev.at < horizon) ++report_.fault_events;
  for (const auto& grp : groups_) {
    report_.agent_wakeups += grp->agent_wakeups;
    report_.ddos_attacks += grp->ddos_attacks;
    if (grp->backend) report_.backend += grp->backend->stats();
  }
  return report_;
}

}  // namespace u1
