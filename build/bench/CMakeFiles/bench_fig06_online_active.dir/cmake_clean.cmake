file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_online_active.dir/bench_fig06_online_active.cpp.o"
  "CMakeFiles/bench_fig06_online_active.dir/bench_fig06_online_active.cpp.o.d"
  "bench_fig06_online_active"
  "bench_fig06_online_active.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_online_active.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
