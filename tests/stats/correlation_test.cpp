#include "stats/correlation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace u1 {
namespace {

TEST(Pearson, PerfectLinear) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(Pearson, IndependentNearZero) {
  Rng rng(9);
  std::vector<double> x, y;
  for (int i = 0; i < 20000; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  EXPECT_NEAR(pearson(x, y), 0.0, 0.03);
}

TEST(Pearson, ConstantInputGivesZero) {
  const std::vector<double> x = {3, 3, 3};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(x, y), 0.0);
}

TEST(Pearson, RejectsMismatchedOrShort) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {1, 2, 3};
  EXPECT_THROW(pearson(a, b), std::invalid_argument);
  const std::vector<double> one = {1};
  EXPECT_THROW(pearson(one, one), std::invalid_argument);
}

TEST(Pearson, VolumeLikeStrongCorrelation) {
  // Files vs directories per volume: dirs ≈ files/12 with noise, as in
  // Fig. 10 (Pearson 0.998).
  Rng rng(10);
  std::vector<double> files, dirs;
  for (int i = 0; i < 5000; ++i) {
    const double f = rng.uniform(0, 10000);
    files.push_back(f);
    dirs.push_back(f / 12.0 + rng.uniform(-5, 5));
  }
  EXPECT_GT(pearson(files, dirs), 0.99);
}

TEST(Spearman, MonotoneNonlinearIsOne) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // x^3: nonlinear
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

}  // namespace
}  // namespace u1
