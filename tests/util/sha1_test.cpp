#include "util/sha1.hpp"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

namespace u1 {
namespace {

// FIPS 180-1 / RFC 3174 test vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(Sha1::of("").hex(), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(Sha1::of("abc").hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(
      Sha1::of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
          .hex(),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(h.finish().hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "the 64-byte block boundary at an awkward offset.";
  const auto oneshot = Sha1::of(msg);
  for (std::size_t cut = 0; cut <= msg.size(); cut += 7) {
    Sha1 h;
    h.update(std::string_view(msg).substr(0, cut));
    h.update(std::string_view(msg).substr(cut));
    EXPECT_EQ(h.finish(), oneshot) << "cut at " << cut;
  }
}

TEST(Sha1, ResetReusesHasher) {
  Sha1 h;
  h.update("first");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finish().hex(), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, ExactBlockBoundary) {
  // 64 bytes: the padding path where a full extra block is needed.
  const std::string msg(64, 'x');
  Sha1 h;
  h.update(msg);
  const auto a = h.finish();
  // Cross-check by splitting.
  Sha1 g;
  g.update(std::string_view(msg).substr(0, 32));
  g.update(std::string_view(msg).substr(32));
  EXPECT_EQ(g.finish(), a);
}

TEST(Sha1Digest, HexIs40LowercaseChars) {
  const auto d = Sha1::of("payload");
  const std::string hex = d.hex();
  ASSERT_EQ(hex.size(), 40u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

TEST(Sha1Digest, DistinctInputsDistinctDigests) {
  std::unordered_set<Sha1Digest> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto [it, inserted] = seen.insert(Sha1::of("content-" + std::to_string(i)));
    EXPECT_TRUE(inserted);
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Sha1Digest, ComparableAndHashable) {
  const auto a = Sha1::of("a");
  const auto b = Sha1::of("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Sha1::of("a"));
  EXPECT_NE(std::hash<Sha1Digest>{}(a), std::hash<Sha1Digest>{}(b));
}

}  // namespace
}  // namespace u1
