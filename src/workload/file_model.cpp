#include "workload/file_model.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace u1 {
namespace {

constexpr double KB = 1024.0;
constexpr double MB = 1024.0 * 1024.0;

/// Calibration notes. Popularity weights approximate the Fig. 4c category
/// count shares (Code highest count, then Pics/Docs/Binary; Audio/Video
/// few files but large sizes -> dominant storage share). Medians/sigmas
/// approximate the per-extension CDFs of Fig. 4b; with these parameters
/// ~90% of sampled files are < 1MB.
constexpr std::array<FileModel::ExtensionParams, 30> kCatalog = {{
    // ext       category                  pop    median        sigma  max            upd
    {"jpg",  FileCategory::kPics,       0.090, 350.0 * KB,  1.10, 40.0 * MB,  0.02},
    {"png",  FileCategory::kPics,       0.055, 120.0 * KB,  1.30, 20.0 * MB,  0.05},
    {"gif",  FileCategory::kPics,       0.025,  40.0 * KB,  1.20, 8.0 * MB,   0.02},
    {"c",    FileCategory::kCode,       0.050,   6.0 * KB,  1.20, 2.0 * MB,   0.60},
    {"h",    FileCategory::kCode,       0.040,   3.0 * KB,  1.10, 1.0 * MB,   0.55},
    {"py",   FileCategory::kCode,       0.055,   4.0 * KB,  1.20, 2.0 * MB,   0.65},
    {"js",   FileCategory::kCode,       0.050,   8.0 * KB,  1.40, 4.0 * MB,   0.60},
    {"php",  FileCategory::kCode,       0.040,   7.0 * KB,  1.30, 2.0 * MB,   0.60},
    {"java", FileCategory::kCode,       0.035,   5.0 * KB,  1.20, 2.0 * MB,   0.60},
    {"html", FileCategory::kCode,       0.035,  10.0 * KB,  1.40, 4.0 * MB,   0.50},
    {"pdf",  FileCategory::kDocs,       0.035, 280.0 * KB,  1.50, 80.0 * MB,  0.05},
    {"txt",  FileCategory::kDocs,       0.030,   4.0 * KB,  1.60, 4.0 * MB,   0.55},
    {"doc",  FileCategory::kDocs,       0.022,  90.0 * KB,  1.30, 30.0 * MB,  0.45},
    {"xls",  FileCategory::kDocs,       0.012,  60.0 * KB,  1.40, 20.0 * MB,  0.45},
    {"odt",  FileCategory::kDocs,       0.008,  45.0 * KB,  1.30, 20.0 * MB,  0.45},
    {"mp3",  FileCategory::kAudioVideo, 0.035,   4.2 * MB,  0.70, 60.0 * MB,  0.30},
    {"ogg",  FileCategory::kAudioVideo, 0.010,   3.6 * MB,  0.70, 60.0 * MB,  0.20},
    {"wav",  FileCategory::kAudioVideo, 0.006,   9.0 * MB,  1.00, 200.0 * MB, 0.03},
    {"avi",  FileCategory::kAudioVideo, 0.006,  90.0 * MB,  1.20, 2048.0 * MB,0.01},
    {"mp4",  FileCategory::kAudioVideo, 0.008,  50.0 * MB,  1.30, 2048.0 * MB,0.01},
    {"o",    FileCategory::kBinary,     0.045,  30.0 * KB,  1.50, 20.0 * MB,  0.40},
    {"jar",  FileCategory::kBinary,     0.020, 500.0 * KB,  1.40, 80.0 * MB,  0.10},
    {"msf",  FileCategory::kBinary,     0.015,  60.0 * KB,  1.50, 20.0 * MB,  0.30},
    {"bin",  FileCategory::kBinary,     0.020, 200.0 * KB,  1.80, 200.0 * MB, 0.10},
    {"exe",  FileCategory::kBinary,     0.015, 800.0 * KB,  1.60, 300.0 * MB, 0.03},
    {"zip",  FileCategory::kCompressed, 0.025,   1.8 * MB,  1.80, 1024.0 * MB,0.04},
    {"gz",   FileCategory::kCompressed, 0.020,   0.9 * MB,  1.90, 1024.0 * MB,0.04},
    {"rar",  FileCategory::kCompressed, 0.008,   4.0 * MB,  1.60, 1024.0 * MB,0.02},
    {"xml",  FileCategory::kOther,      0.090,   9.0 * KB,  1.60, 8.0 * MB,   0.50},
    {"cache",FileCategory::kOther,      0.095,  15.0 * KB,  1.80, 16.0 * MB,  0.55},
}};

std::array<std::string_view, kCatalog.size()> extension_names() {
  std::array<std::string_view, kCatalog.size()> out{};
  for (std::size_t i = 0; i < kCatalog.size(); ++i)
    out[i] = kCatalog[i].extension;
  return out;
}

const std::array<std::string_view, kCatalog.size()> kExtensionNames =
    extension_names();

std::vector<double> popularity_weights() {
  std::vector<double> w;
  w.reserve(kCatalog.size());
  for (const auto& e : kCatalog) w.push_back(e.popularity);
  return w;
}

double lognormal_sample(double median, double sigma, Rng& rng) {
  const double u1 = 1.0 - rng.uniform();
  const double u2 = rng.uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2 * M_PI * u2);
  return median * std::exp(sigma * z);
}

}  // namespace

std::string_view to_string(FileCategory c) noexcept {
  switch (c) {
    case FileCategory::kPics: return "Pics";
    case FileCategory::kCode: return "Code";
    case FileCategory::kDocs: return "Docs";
    case FileCategory::kAudioVideo: return "Audio/Video";
    case FileCategory::kBinary: return "Binary";
    case FileCategory::kCompressed: return "Compressed";
    case FileCategory::kOther: return "Other";
  }
  return "Other";
}

FileCategory category_of(std::string_view extension) noexcept {
  for (const auto& e : kCatalog)
    if (e.extension == extension) return e.category;
  return FileCategory::kOther;
}

std::span<const FileModel::ExtensionParams> FileModel::catalog() noexcept {
  return kCatalog;
}

FileModel::FileModel() : popularity_(popularity_weights()) {}

FileSpec FileModel::sample(Rng& rng) const {
  const auto& params = kCatalog[popularity_.sample(rng)];
  FileSpec spec;
  spec.extension = params.extension;
  spec.category = params.category;
  const double raw = lognormal_sample(params.median_bytes, params.sigma, rng);
  spec.size_bytes = static_cast<std::uint64_t>(
      std::clamp(raw, 64.0, params.max_bytes));
  spec.update_affinity = params.update_affinity;
  return spec;
}

std::uint64_t FileModel::sample_update_size(const FileSpec& original,
                                            Rng& rng) const {
  // Edits usually change size slightly: +/- up to 20%, floor of 64B.
  const double factor = rng.uniform(0.85, 1.20);
  const double bytes = static_cast<double>(original.size_bytes) * factor;
  return static_cast<std::uint64_t>(std::max(64.0, bytes));
}

std::span<const std::string_view> FileModel::known_extensions()
    const noexcept {
  return kExtensionNames;
}

}  // namespace u1
