# Empty dependencies file for bench_abl_delta_updates.
# This may be replaced when dependencies are built.
