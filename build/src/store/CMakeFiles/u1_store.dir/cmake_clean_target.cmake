file(REMOVE_RECURSE
  "libu1_store.a"
)
