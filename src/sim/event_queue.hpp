// Discrete-event core: a time-ordered queue with deterministic FIFO
// tie-breaking (events at equal timestamps pop in insertion order, so a
// simulation is reproducible bit-for-bit given a seed).
//
// Two interchangeable implementations live behind the same interface and
// produce the exact same pop order (enforced by tests):
//
//  - kBinaryHeap: a raw std::vector binary heap (push_heap/pop_heap with
//    move-out pops). O(log n) per operation; the default for
//    free-standing queues.
//
//  - kCalendar: a classic calendar queue (Brown '88): B = 2^k unsorted
//    buckets of width W simulated time; an event with timestamp t lives
//    in bucket (t/W) mod B. The cursor walks bucket-by-bucket through
//    the current "year"; pops scan only the current bucket for the
//    minimum (t, seq). With the self-tuning resize policy keeping ~1-2
//    events per bucket, push and pop are amortized O(1) — this removes
//    the push_heap/pop_heap log-factor from the simulator's hottest
//    loop. Degenerate inputs (millions of events at one timestamp)
//    degrade to a linear bucket scan; the DES workload has continuous
//    timestamps where that does not occur.
//
// The engines pick the implementation via engine_queue_impl(), i.e. the
// calendar queue unless U1SIM_QUEUE=heap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string_view>
#include <utility>
#include <vector>

#include "util/sim_time.hpp"

namespace u1 {

enum class QueueImpl : std::uint8_t { kBinaryHeap, kCalendar };

/// The implementation the simulation engines use for their hot loops:
/// the calendar queue, unless the U1SIM_QUEUE environment knob says
/// "heap" (escape hatch; "calendar" forces the default explicitly).
/// Both implementations pop in the identical order, so the knob never
/// changes a trace — only the constant factor of the event loop.
inline QueueImpl engine_queue_impl() noexcept {
  static const QueueImpl impl = [] {
    if (const char* v = std::getenv("U1SIM_QUEUE")) {
      const std::string_view s(v);
      if (s == "heap" || s == "binary" || s == "binary_heap")
        return QueueImpl::kBinaryHeap;
    }
    return QueueImpl::kCalendar;
  }();
  return impl;
}

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Payload payload;
  };

  explicit EventQueue(QueueImpl impl = QueueImpl::kBinaryHeap)
      : impl_(impl) {}

  QueueImpl impl() const noexcept { return impl_; }

  /// Lifetime calendar-bucket statistics (all zero under kBinaryHeap).
  /// Unlike scan_cost_/finds_ — which the self-tuning policy resets —
  /// these only grow, so scanned/finds is the true average number of
  /// events inspected per minimum-location over the whole run.
  struct CalendarStats {
    std::uint64_t rebuilds = 0;  // bucket-array resizes / re-estimates
    std::uint64_t finds = 0;     // minimum locations (next_time/pop)
    std::uint64_t scanned = 0;   // events inspected across all finds
  };
  CalendarStats calendar_stats() const noexcept { return stats_; }

  /// Switches the implementation; only legal while the queue is empty
  /// (the engines call it once, right after constructing each group).
  void set_impl(QueueImpl impl) {
    if (!empty())
      throw std::logic_error("EventQueue::set_impl: queue not empty");
    impl_ = impl;
  }

  /// Pre-sizes the backing vector (e.g. one slot per scheduled agent).
  void reserve(std::size_t n) {
    if (impl_ == QueueImpl::kBinaryHeap) heap_.reserve(n);
    // The calendar sizes its buckets from the live population; a
    // reservation hint has nothing to pre-size.
  }

  void push(SimTime t, Payload payload) {
    Event ev{t, next_seq_++, std::move(payload)};
    if (impl_ == QueueImpl::kBinaryHeap) {
      heap_.push_back(std::move(ev));
      std::push_heap(heap_.begin(), heap_.end(), Later{});
    } else {
      cal_push(std::move(ev));
    }
  }

  bool empty() const noexcept {
    return impl_ == QueueImpl::kBinaryHeap ? heap_.empty() : count_ == 0;
  }
  std::size_t size() const noexcept {
    return impl_ == QueueImpl::kBinaryHeap ? heap_.size() : count_;
  }
  std::size_t capacity() const noexcept { return heap_.capacity(); }

  /// Timestamp of the next event; only valid when !empty(). (Locating
  /// the calendar minimum advances the cursor, hence non-const; the
  /// result is cached for the following pop.)
  SimTime next_time() {
    if (impl_ == QueueImpl::kBinaryHeap) return heap_.front().t;
    cal_find_min();
    return buckets_[min_bucket_][min_index_].t;
  }

  /// Pops the earliest event (moved out of the store, never copied).
  Event pop() {
    if (impl_ == QueueImpl::kBinaryHeap) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Event e = std::move(heap_.back());
      heap_.pop_back();
      return e;
    }
    return cal_pop();
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  struct Sooner {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t < b.t;
      return a.seq < b.seq;
    }
  };

  static std::int64_t fdiv(SimTime t, SimTime w) noexcept {
    return t >= 0 ? t / w : -((-t + w - 1) / w);
  }
  std::size_t bucket_of(std::int64_t div) const noexcept {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(div) &
                                    (buckets_.size() - 1));
  }

  void cal_push(Event ev) {
    if (buckets_.empty()) {
      buckets_.resize(kMinBuckets);
      cur_div_ = fdiv(ev.t, width_);
    }
    const std::int64_t d = fdiv(ev.t, width_);
    if (d < cur_div_) cur_div_ = d;  // earlier than the cursor: back up
    auto& bucket = buckets_[bucket_of(d)];
    if (min_valid_ && ev.t < buckets_[min_bucket_][min_index_].t) {
      // New global minimum; equal timestamps keep the cached event (its
      // seq is necessarily smaller).
      min_bucket_ = bucket_of(d);
      min_index_ = bucket.size();
    }
    bucket.push_back(std::move(ev));
    ++count_;
    if (count_ > buckets_.size() * 2) cal_rebuild(buckets_.size() * 2);
  }

  /// Locates (and caches) the minimum (t, seq) event. Walks due buckets
  /// from the cursor; if a whole calendar year is empty the queue is
  /// sparse relative to the bucket width — fall back to a direct scan
  /// and jump the cursor to the minimum.
  void cal_find_min() {
    if (min_valid_) return;
    ++finds_;
    ++stats_.finds;
    const std::size_t n_buckets = buckets_.size();
    for (std::size_t pass = 0; pass < n_buckets; ++pass) {
      const std::int64_t d = cur_div_ + static_cast<std::int64_t>(pass);
      const auto& bucket = buckets_[bucket_of(d)];
      scan_cost_ += bucket.size() + 1;
      stats_.scanned += bucket.size() + 1;
      std::size_t best = bucket.size();
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (fdiv(bucket[i].t, width_) != d) continue;
        if (best == bucket.size() || Sooner{}(bucket[i], bucket[best]))
          best = i;
      }
      if (best != bucket.size()) {
        cur_div_ = d;
        min_bucket_ = bucket_of(d);
        min_index_ = best;
        min_valid_ = true;
        return;
      }
    }
    std::size_t bb = 0, bi = 0;
    bool have = false;
    for (std::size_t b = 0; b < n_buckets; ++b) {
      scan_cost_ += buckets_[b].size();
      stats_.scanned += buckets_[b].size();
      for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
        if (!have || Sooner{}(buckets_[b][i], buckets_[bb][bi])) {
          bb = b;
          bi = i;
          have = true;
        }
      }
    }
    cur_div_ = fdiv(buckets_[bb][bi].t, width_);
    min_bucket_ = bb;
    min_index_ = bi;
    min_valid_ = true;
  }

  Event cal_pop() {
    cal_find_min();
    auto& bucket = buckets_[min_bucket_];
    Event out = std::move(bucket[min_index_]);
    // Buckets are unsorted, so swap-remove is order-neutral.
    if (min_index_ + 1 != bucket.size())
      bucket[min_index_] = std::move(bucket.back());
    bucket.pop_back();
    --count_;
    min_valid_ = false;
    cur_div_ = fdiv(out.t, width_);
    if (buckets_.size() > kMinBuckets && count_ < buckets_.size() / 4) {
      cal_rebuild(buckets_.size() / 2);
    } else if (finds_ >= 4096) {
      // Scans are averaging too many inspected events per find: the
      // width no longer matches the event density — re-estimate.
      if (scan_cost_ > finds_ * 8) cal_rebuild(buckets_.size());
      scan_cost_ = 0;
      finds_ = 0;
    }
    return out;
  }

  /// Rebuilds with `new_buckets` buckets and a width re-estimated from
  /// the event gaps at the head of the queue (Brown's heuristic: ~3x the
  /// mean gap among the nearest events), so one bucket holds a handful
  /// of events regardless of how the workload's time scale drifts.
  void cal_rebuild(std::size_t new_buckets) {
    ++stats_.rebuilds;
    std::vector<Event> all;
    all.reserve(count_);
    for (auto& bucket : buckets_) {
      for (auto& ev : bucket) all.push_back(std::move(ev));
      bucket.clear();
    }
    SimTime min_t = 0;
    if (all.size() >= 2) {
      std::vector<SimTime> times;
      times.reserve(all.size());
      for (const Event& ev : all) times.push_back(ev.t);
      const std::size_t sample = std::min<std::size_t>(times.size(), 64);
      std::nth_element(times.begin(),
                       times.begin() + static_cast<std::ptrdiff_t>(sample - 1),
                       times.end());
      const SimTime head_max = times[sample - 1];
      min_t = *std::min_element(
          times.begin(), times.begin() + static_cast<std::ptrdiff_t>(sample));
      width_ = std::max<SimTime>(
          1, 3 * (head_max - min_t) / static_cast<SimTime>(sample - 1));
    } else if (!all.empty()) {
      min_t = all.front().t;
    }
    buckets_.assign(std::max<std::size_t>(new_buckets, kMinBuckets), {});
    for (auto& ev : all) {
      const SimTime t = ev.t;
      buckets_[bucket_of(fdiv(t, width_))].push_back(std::move(ev));
    }
    count_ = all.size();
    cur_div_ = fdiv(min_t, width_);
    min_valid_ = false;
    scan_cost_ = 0;
    finds_ = 0;
  }

  static constexpr std::size_t kMinBuckets = 8;  // power of two

  QueueImpl impl_;
  std::uint64_t next_seq_ = 0;

  // kBinaryHeap state.
  std::vector<Event> heap_;

  // kCalendar state.
  std::vector<std::vector<Event>> buckets_;
  SimTime width_ = kSecond;
  std::int64_t cur_div_ = 0;  // floor(t/width) of the cursor bucket
  std::size_t count_ = 0;
  bool min_valid_ = false;  // cached minimum location (next_time -> pop)
  std::size_t min_bucket_ = 0;
  std::size_t min_index_ = 0;
  std::uint64_t scan_cost_ = 0;  // events inspected since last re-estimate
  std::uint64_t finds_ = 0;
  CalendarStats stats_;  // cumulative, never reset
};

}  // namespace u1
