file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04c_type_shares.dir/bench_fig04c_type_shares.cpp.o"
  "CMakeFiles/bench_fig04c_type_shares.dir/bench_fig04c_type_shares.cpp.o.d"
  "bench_fig04c_type_shares"
  "bench_fig04c_type_shares.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04c_type_shares.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
