#include "server/fleet.hpp"

#include <gtest/gtest.h>

#include <set>

namespace u1 {
namespace {

TEST(ServerFleet, ConstructionLayout) {
  ServerFleet fleet(FleetConfig{6, 12}, 1);
  EXPECT_EQ(fleet.machine_count(), 6u);
  EXPECT_EQ(fleet.process_count(), 72u);
  // Every process maps to a valid machine.
  for (std::size_t p = 1; p <= 72; ++p) {
    const MachineId m = fleet.machine_of(ProcessId{p});
    EXPECT_GE(m.value, 1u);
    EXPECT_LE(m.value, 6u);
  }
}

TEST(ServerFleet, RejectsZeroConfig) {
  EXPECT_THROW(ServerFleet(FleetConfig{0, 4}, 1), std::invalid_argument);
  EXPECT_THROW(ServerFleet(FleetConfig{4, 0}, 1), std::invalid_argument);
}

TEST(ServerFleet, PlacementPrefersLeastLoaded) {
  ServerFleet fleet(FleetConfig{3, 2}, 2);
  // First three placements land on three distinct machines (leastconn).
  std::set<std::uint64_t> machines;
  for (int i = 0; i < 3; ++i) machines.insert(fleet.place_session().machine.value);
  EXPECT_EQ(machines.size(), 3u);
  EXPECT_EQ(fleet.total_open_sessions(), 3u);
}

TEST(ServerFleet, PlacementProcessBelongsToMachine) {
  ServerFleet fleet(FleetConfig{4, 8}, 3);
  for (int i = 0; i < 100; ++i) {
    const auto p = fleet.place_session();
    EXPECT_EQ(fleet.machine_of(p.process), p.machine);
  }
}

TEST(ServerFleet, EndSessionReleasesSlot) {
  ServerFleet fleet(FleetConfig{2, 2}, 4);
  const auto a = fleet.place_session();
  EXPECT_EQ(fleet.open_sessions(a.machine), 1u);
  EXPECT_EQ(fleet.process_sessions(a.process), 1u);
  EXPECT_TRUE(fleet.end_session(a.machine, a.process));
  EXPECT_EQ(fleet.open_sessions(a.machine), 0u);
  // Idempotent under fault races: a disconnect after a crash already
  // dropped the session is a no-op, not a crash.
  EXPECT_FALSE(fleet.end_session(a.machine, a.process));
}

TEST(ServerFleet, BadIdsThrow) {
  ServerFleet fleet(FleetConfig{2, 2}, 5);
  EXPECT_THROW(fleet.machine_of(ProcessId{0}), std::out_of_range);
  EXPECT_THROW(fleet.machine_of(ProcessId{99}), std::out_of_range);
  EXPECT_THROW(fleet.open_sessions(MachineId{0}), std::out_of_range);
  EXPECT_THROW(fleet.end_session(MachineId{9}, ProcessId{1}),
               std::out_of_range);
  EXPECT_THROW(fleet.end_session(MachineId{1}, ProcessId{99}),
               std::out_of_range);
}

TEST(ServerFleet, KillAndRespawnProcess) {
  ServerFleet fleet(FleetConfig{2, 2}, 9);
  const ProcessId victim{1};
  EXPECT_TRUE(fleet.process_alive(victim));
  fleet.kill_process(victim);
  EXPECT_FALSE(fleet.process_alive(victim));
  // Placement skips the dead process.
  for (int i = 0; i < 50; ++i) {
    const auto p = fleet.place_session();
    EXPECT_NE(p.process.value, victim.value);
  }
  fleet.respawn_process(victim);
  EXPECT_TRUE(fleet.process_alive(victim));
}

TEST(ServerFleet, MachineOutageRedirectsPlacements) {
  ServerFleet fleet(FleetConfig{3, 2}, 10);
  fleet.kill_machine(MachineId{2});
  EXPECT_FALSE(fleet.machine_alive(MachineId{2}));
  EXPECT_TRUE(fleet.live_processes_on(MachineId{2}).empty());
  for (int i = 0; i < 60; ++i) {
    const auto p = fleet.place_session();
    EXPECT_NE(p.machine.value, 2u);
  }
  fleet.restore_machine(MachineId{2});
  EXPECT_TRUE(fleet.machine_alive(MachineId{2}));
  EXPECT_EQ(fleet.live_processes_on(MachineId{2}).size(), 2u);
}

TEST(ServerFleet, PerProcessCapShedsLoad) {
  ServerFleet fleet(FleetConfig{2, 1}, 11);
  // Two processes, cap 1: the third concurrent session has nowhere to go.
  ASSERT_TRUE(fleet.place_session(1).has_value());
  ASSERT_TRUE(fleet.place_session(1).has_value());
  EXPECT_FALSE(fleet.place_session(1).has_value());
  // Whole fleet dead: capacity-0 placement also sheds.
  fleet.kill_machine(MachineId{1});
  fleet.kill_machine(MachineId{2});
  EXPECT_FALSE(fleet.place_session(0).has_value());
  EXPECT_THROW(fleet.place_session(), std::logic_error);
}

TEST(ServerFleet, MigrationMovesProcessesButKeepsCoverage) {
  ServerFleet fleet(FleetConfig{4, 10}, 6);
  std::size_t moved_total = 0;
  for (int i = 0; i < 10; ++i) moved_total += fleet.migrate_processes(0.5);
  EXPECT_GT(moved_total, 0u);
  // Machines must all keep at least one process: placements never throw.
  for (int i = 0; i < 200; ++i) {
    const auto p = fleet.place_session();
    EXPECT_EQ(fleet.machine_of(p.process), p.machine);
  }
}

TEST(ServerFleet, MigrationValidatesFraction) {
  ServerFleet fleet(FleetConfig{2, 2}, 7);
  EXPECT_THROW(fleet.migrate_processes(-0.1), std::invalid_argument);
  EXPECT_THROW(fleet.migrate_processes(1.1), std::invalid_argument);
  EXPECT_EQ(fleet.migrate_processes(0.0), 0u);
}

TEST(ServerFleet, RampFractionTracksSlowStartWindow) {
  ServerFleet fleet(FleetConfig{2, 1, 600 * kSecond}, 12);
  const ProcessId p{2};
  EXPECT_FALSE(fleet.in_slow_start(p, 0));
  EXPECT_DOUBLE_EQ(fleet.ramp_fraction(p, 0), 1.0);
  fleet.kill_process(p);
  fleet.respawn_process(p, 1000 * kSecond);
  EXPECT_TRUE(fleet.in_slow_start(p, 1000 * kSecond));
  EXPECT_DOUBLE_EQ(fleet.ramp_fraction(p, 1000 * kSecond), 0.0);
  EXPECT_DOUBLE_EQ(fleet.ramp_fraction(p, 1300 * kSecond), 0.5);
  EXPECT_DOUBLE_EQ(fleet.ramp_fraction(p, 1600 * kSecond), 1.0);
  EXPECT_FALSE(fleet.in_slow_start(p, 1600 * kSecond));
  // A second death forfeits the ramp outright.
  fleet.kill_process(p);
  EXPECT_DOUBLE_EQ(fleet.ramp_fraction(p, 1200 * kSecond), 1.0);
}

TEST(ServerFleet, NegativeSlowStartThrows) {
  EXPECT_THROW(ServerFleet(FleetConfig{2, 1, -1}, 1),
               std::invalid_argument);
}

// The flood-on-failback regression: a restored machine re-enters
// placement with zero open sessions, and without slow-start leastconn
// funnels every new session into it until it reaches parity.
TEST(ServerFleet, RestoredMachineFloodsWithoutSlowStart) {
  ServerFleet fleet(FleetConfig{2, 1}, 13);
  std::vector<ServerFleet::Placement> on2;
  for (int i = 0; i < 10; ++i) {
    const auto p = *fleet.place_session(0);
    if (p.machine.value == 2) on2.push_back(p);
  }
  fleet.kill_machine(MachineId{2});
  for (const auto& p : on2) fleet.end_session(p.machine, p.process);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(fleet.place_session(0));
  ASSERT_EQ(fleet.open_sessions(MachineId{1}), 10u);
  fleet.restore_machine(MachineId{2});
  // All of the next 10 sessions stampede the cold machine.
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(fleet.place_session(0)->machine.value, 2u);
}

TEST(ServerFleet, SlowStartRampPreventsFailbackFlood) {
  ServerFleet fleet(FleetConfig{2, 1, 600 * kSecond}, 13);
  std::vector<ServerFleet::Placement> on2;
  for (int i = 0; i < 10; ++i) {
    const auto p = *fleet.place_session(0);
    if (p.machine.value == 2) on2.push_back(p);
  }
  fleet.kill_machine(MachineId{2});
  for (const auto& p : on2) fleet.end_session(p.machine, p.process);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(fleet.place_session(0));
  ASSERT_EQ(fleet.open_sessions(MachineId{1}), 10u);

  const SimTime now = 10000 * kSecond;
  fleet.restore_machine(MachineId{2}, now);
  // At ramp fraction 0 the restored process admits one session (never
  // zero — it must make progress) and the rest stay away.
  int to2 = 0;
  for (int i = 0; i < 10; ++i)
    if (fleet.place_session(0, now)->machine.value == 2) ++to2;
  EXPECT_EQ(to2, 1);
  // Halfway through the ramp it takes a partial share.
  const SimTime mid = now + 300 * kSecond;
  int to2_mid = 0;
  for (int i = 0; i < 10; ++i)
    if (fleet.place_session(0, mid)->machine.value == 2) ++to2_mid;
  EXPECT_GT(to2_mid, 1);
  EXPECT_LT(to2_mid, 10);
  // Past the window the ramp expires and leastconn takes over fully.
  const SimTime after = now + 600 * kSecond;
  (void)fleet.place_session(0, after);
  EXPECT_FALSE(fleet.in_slow_start(ProcessId{2}, after));
}

TEST(ServerFleet, RampedAdmissionHonorsSessionCap) {
  ServerFleet fleet(FleetConfig{2, 1, 600 * kSecond}, 14);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(fleet.place_session(20));
  fleet.kill_process(ProcessId{2});
  const SimTime now = 5000 * kSecond;
  fleet.respawn_process(ProcessId{2}, now);
  // Halfway through the ramp the cap-derived target (20) is halved; the
  // restored process stops admitting at 10 even though leastconn keeps
  // nominating it.
  const SimTime mid = now + 300 * kSecond;
  std::uint64_t before = fleet.process_sessions(ProcessId{2});
  for (int i = 0; i < 30; ++i) (void)fleet.place_session(20, mid);
  EXPECT_LE(fleet.process_sessions(ProcessId{2}) - before, 10u);
}

TEST(ServerFleet, SlowStartIdleFleetMatchesLegacyPlacement) {
  // With slow_start configured but no ramp active, the placement (and
  // RNG draw) sequence must be byte-identical to the legacy fleet.
  ServerFleet legacy(FleetConfig{4, 3}, 15);
  ServerFleet ramped(FleetConfig{4, 3, 900 * kSecond}, 15);
  for (int i = 0; i < 300; ++i) {
    const auto a = *legacy.place_session(0);
    const auto b = *ramped.place_session(0, static_cast<SimTime>(i) * kSecond);
    EXPECT_EQ(a.machine.value, b.machine.value);
    EXPECT_EQ(a.process.value, b.process.value);
  }
}

TEST(ServerFleet, LongRunBalancedPlacements) {
  ServerFleet fleet(FleetConfig{6, 12}, 8);
  std::vector<int> per_machine(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto p = fleet.place_session();
    per_machine[p.machine.value - 1]++;
  }
  // leastconn with no departures gives near-perfect balance.
  for (const int c : per_machine) EXPECT_EQ(c, 1000);
}

}  // namespace
}  // namespace u1
