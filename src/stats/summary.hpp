// Descriptive statistics and boxplot summaries (Fig. 2c uses a boxplot of
// hourly R/W ratios; Fig. 14 reports mean/stddev load bars).
#pragma once

#include <span>

namespace u1 {

/// One-pass accumulator for mean / variance (Welford) plus min/max.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }
  /// Coefficient of variation stddev/mean; 0 when mean is 0.
  double cv() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number summary + mean, as drawn in a boxplot.
struct BoxplotStats {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  double mean = 0;
  double iqr() const noexcept { return q3 - q1; }
};

/// Computes a boxplot summary from a sample (copies + sorts internally).
/// Throws std::invalid_argument if the sample is empty.
BoxplotStats boxplot(std::span<const double> sample);

double mean_of(std::span<const double> sample);
double median_of(std::span<const double> sample);

}  // namespace u1
