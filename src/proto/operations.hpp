// The U1 storage-protocol operation vocabulary: API operations executed by
// desktop clients (Table 2) and the DAL RPCs they translate into
// (Tables 2 and 4, plus the read-only RPCs of Fig. 12c). Fig. 13 groups
// RPCs into read / write / cascade classes; that classification lives here
// so the store, the analyzers and the benches all agree on it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace u1 {

/// Client-visible API operations (paper Table 2 and Fig. 7a/8).
enum class ApiOp : std::uint8_t {
  kListVolumes,
  kListShares,
  kPutContent,   // Upload
  kGetContent,   // Download
  kMake,         // MakeFile / MakeDir ("touch")
  kUnlink,
  kMove,
  kCreateUDF,
  kDeleteVolume,
  kGetDelta,
  kAuthenticate,
  kOpenSession,
  kCloseSession,
  kQuerySetCaps,        // capability negotiation at session start
  kRescanFromScratch,   // full resync of a volume
};
inline constexpr std::size_t kApiOpCount = 15;

/// True for operations that move file data (paper §3.1.2 calls these data
/// management operations; everything else is metadata-only).
constexpr bool is_data_op(ApiOp op) noexcept {
  return op == ApiOp::kPutContent || op == ApiOp::kGetContent;
}

/// True for "storage management" operations a user actively performs on
/// volumes; the paper's *active user* definition (§6.1) is "performs data
/// management operations on his volumes".
constexpr bool is_storage_op(ApiOp op) noexcept {
  switch (op) {
    case ApiOp::kPutContent:
    case ApiOp::kGetContent:
    case ApiOp::kMake:
    case ApiOp::kUnlink:
    case ApiOp::kMove:
    case ApiOp::kCreateUDF:
    case ApiOp::kDeleteVolume:
      return true;
    default:
      return false;
  }
}

std::string_view to_string(ApiOp op) noexcept;
std::optional<ApiOp> api_op_from_string(std::string_view name) noexcept;
std::span<const ApiOp> all_api_ops() noexcept;

/// DAL (data-access-layer) RPCs issued by RPC workers against the metadata
/// store. Names mirror the paper's dal.* identifiers.
enum class RpcOp : std::uint8_t {
  // File-system management (Fig. 12a)
  kListVolumes,       // dal.list_volumes
  kListShares,        // dal.list_shares
  kMakeDir,           // dal.make_dir
  kMakeFile,          // dal.make_file
  kUnlinkNode,        // dal.unlink_node
  kMove,              // dal.move
  kCreateUDF,         // dal.create_udf
  kDeleteVolume,      // dal.delete_volume (cascade)
  kGetDelta,          // dal.get_delta
  kGetVolumeId,       // dal.get_volume_id
  // Upload management (Table 4, Fig. 12b)
  kMakeContent,            // dal.make_content
  kMakeUploadJob,          // dal.make_uploadjob
  kGetUploadJob,           // dal.get_uploadjob
  kAddPartToUploadJob,     // dal.add_part_to_uploadjob
  kSetUploadJobMultipartId,// dal.set_uploadjob_multipart_id
  kTouchUploadJob,         // dal.touch_uploadjob
  kDeleteUploadJob,        // dal.delete_uploadjob
  kGetReusableContent,     // dal.get_reusable_content
  // Other read-only RPCs (Fig. 12c)
  kGetUserIdFromToken,  // auth.get_user_id_from_token
  kGetFromScratch,      // dal.get_from_scratch (cascade)
  kGetNode,             // dal.get_node
  kGetRoot,             // dal.get_root
  kGetUserData,         // dal.get_user_data
};
inline constexpr std::size_t kRpcOpCount = 23;

/// Fig. 13 RPC classes; the class strongly determines service time.
enum class RpcClass : std::uint8_t { kRead, kWrite, kCascade };

RpcClass rpc_class(RpcOp op) noexcept;
std::string_view to_string(RpcOp op) noexcept;
std::string_view to_string(RpcClass c) noexcept;
std::optional<RpcOp> rpc_op_from_string(std::string_view name) noexcept;
std::span<const RpcOp> all_rpc_ops() noexcept;

}  // namespace u1
