
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/burst.cpp" "src/workload/CMakeFiles/u1_workload.dir/burst.cpp.o" "gcc" "src/workload/CMakeFiles/u1_workload.dir/burst.cpp.o.d"
  "/root/repo/src/workload/content_pool.cpp" "src/workload/CMakeFiles/u1_workload.dir/content_pool.cpp.o" "gcc" "src/workload/CMakeFiles/u1_workload.dir/content_pool.cpp.o.d"
  "/root/repo/src/workload/ddos.cpp" "src/workload/CMakeFiles/u1_workload.dir/ddos.cpp.o" "gcc" "src/workload/CMakeFiles/u1_workload.dir/ddos.cpp.o.d"
  "/root/repo/src/workload/diurnal.cpp" "src/workload/CMakeFiles/u1_workload.dir/diurnal.cpp.o" "gcc" "src/workload/CMakeFiles/u1_workload.dir/diurnal.cpp.o.d"
  "/root/repo/src/workload/file_model.cpp" "src/workload/CMakeFiles/u1_workload.dir/file_model.cpp.o" "gcc" "src/workload/CMakeFiles/u1_workload.dir/file_model.cpp.o.d"
  "/root/repo/src/workload/transitions.cpp" "src/workload/CMakeFiles/u1_workload.dir/transitions.cpp.o" "gcc" "src/workload/CMakeFiles/u1_workload.dir/transitions.cpp.o.d"
  "/root/repo/src/workload/user_model.cpp" "src/workload/CMakeFiles/u1_workload.dir/user_model.cpp.o" "gcc" "src/workload/CMakeFiles/u1_workload.dir/user_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/u1_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/u1_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
