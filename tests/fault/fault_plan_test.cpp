#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fault/fault_injector.hpp"

namespace u1 {
namespace {

TEST(FaultPlanParse, DurationsAndKeys) {
  const FaultPlan plan = parse_fault_plan(
      "s3_brownout t=2d12h30m dur=45m error=0.25 slow=4\n"
      "# a comment line\n"
      "process_crash t=90s dur=1h machine=3 slot=2\n"
      "\n"
      "mq_drop rate=0.5 dur=10m drop=0.9  # trailing comment\n");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kS3Brownout);
  EXPECT_EQ(plan.specs[0].at, 2 * kDay + 12 * kHour + 30 * kMinute);
  EXPECT_EQ(plan.specs[0].duration, 45 * kMinute);
  EXPECT_DOUBLE_EQ(plan.specs[0].error_rate, 0.25);
  EXPECT_DOUBLE_EQ(plan.specs[0].slow_factor, 4.0);
  EXPECT_EQ(plan.specs[1].at, 90 * kSecond);
  EXPECT_EQ(plan.specs[1].machine, 3u);
  EXPECT_EQ(plan.specs[1].slot, 2u);
  EXPECT_DOUBLE_EQ(plan.specs[2].rate_per_day, 0.5);
  EXPECT_DOUBLE_EQ(plan.specs[2].drop_prob, 0.9);
}

TEST(FaultPlanParse, BareNumbersAreSeconds) {
  const FaultPlan plan = parse_fault_plan("s3_brownout t=30 dur=60\n");
  EXPECT_EQ(plan.specs[0].at, 30 * kSecond);
  EXPECT_EQ(plan.specs[0].duration, kMinute);
}

TEST(FaultPlanParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_fault_plan("martian_attack t=1h dur=1h\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("s3_brownout t=1h\n"),  // missing dur
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("s3_brownout t=1x dur=1h\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("s3_brownout bogus dur=1h\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("s3_brownout wat=3 dur=1h\n"),
               std::invalid_argument);
}

TEST(FaultSchedule, PairsBeginAndEndSorted) {
  const FaultPlan plan = parse_fault_plan(
      "s3_brownout t=1h dur=30m error=0.5\n"
      "machine_outage t=2h dur=15m machine=1\n");
  const FaultSchedule sched = build_fault_schedule(plan, kDay, 6, 10, 7);
  ASSERT_EQ(sched.size(), 4u);
  EXPECT_TRUE(std::is_sorted(sched.begin(), sched.end(),
                             [](const FaultEvent& a, const FaultEvent& b) {
                               return a.at < b.at;
                             }));
  // Every id appears exactly twice: one begin, one end, end = begin + dur.
  std::set<std::size_t> ids;
  for (const FaultEvent& ev : sched) ids.insert(ev.id);
  for (const std::size_t id : ids) {
    const auto begin = std::find_if(sched.begin(), sched.end(),
                                    [&](const FaultEvent& e) {
                                      return e.id == id && e.begin;
                                    });
    const auto end = std::find_if(sched.begin(), sched.end(),
                                  [&](const FaultEvent& e) {
                                    return e.id == id && !e.begin;
                                  });
    ASSERT_NE(begin, sched.end());
    ASSERT_NE(end, sched.end());
    EXPECT_EQ(end->at, begin->at + begin->duration);
  }
}

TEST(FaultSchedule, DeterministicAndSeedSensitive) {
  const FaultPlan plan =
      parse_fault_plan("process_crash rate=3 dur=1h\n");  // drawn arrivals
  const FaultSchedule a = build_fault_schedule(plan, 7 * kDay, 6, 10, 42);
  const FaultSchedule b = build_fault_schedule(plan, 7 * kDay, 6, 10, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].machine, b[i].machine);
    EXPECT_EQ(a[i].begin, b[i].begin);
  }
  const FaultSchedule c = build_fault_schedule(plan, 7 * kDay, 6, 10, 43);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i)
    differs = a[i].at != c[i].at || a[i].machine != c[i].machine;
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, DrawnTargetsStayInRange) {
  const FaultPlan plan = parse_fault_plan(
      "machine_outage rate=5 dur=10m\n"
      "shard_failover rate=5 dur=10m reject=0.3\n");
  const FaultSchedule sched = build_fault_schedule(plan, 7 * kDay, 6, 10, 9);
  ASSERT_FALSE(sched.empty());
  for (const FaultEvent& ev : sched) {
    if (ev.kind == FaultKind::kMachineOutage) {
      EXPECT_GE(ev.machine, 1u);
      EXPECT_LE(ev.machine, 6u);
    } else {
      EXPECT_GE(ev.shard, 1u);
      EXPECT_LE(ev.shard, 10u);
    }
  }
}

TEST(FaultSchedule, StandardPlanCoversAcceptanceKinds) {
  const FaultPlan plan = standard_fault_plan();
  const FaultSchedule sched =
      build_fault_schedule(plan, 7 * kDay, 6, 10, 123);
  std::set<FaultKind> kinds;
  for (const FaultEvent& ev : sched)
    if (ev.begin) kinds.insert(ev.kind);
  EXPECT_TRUE(kinds.count(FaultKind::kProcessCrash));
  EXPECT_TRUE(kinds.count(FaultKind::kShardFailover));
  EXPECT_TRUE(kinds.count(FaultKind::kS3Brownout));
  EXPECT_TRUE(kinds.count(FaultKind::kMachineOutage));
  EXPECT_TRUE(kinds.count(FaultKind::kMqDrop));
  EXPECT_TRUE(kinds.count(FaultKind::kAuthBrownout));
  // Everything lands inside the 7-day acceptance horizon.
  for (const FaultEvent& ev : sched) EXPECT_LT(ev.at, 7 * kDay);
}

TEST(FaultLabel, EncodesKindIdPhase) {
  FaultEvent ev;
  ev.id = 2;
  ev.kind = FaultKind::kS3Brownout;
  ev.begin = true;
  EXPECT_EQ(fault_label(ev), "s3_brownout#2:begin");
  ev.begin = false;
  EXPECT_EQ(fault_label(ev), "s3_brownout#2:end");
}

TEST(FaultInjectorWindows, LookupsGateOnTimeAndTarget) {
  const FaultPlan plan = parse_fault_plan(
      "s3_brownout    t=1h dur=1h error=0.5 slow=4\n"
      "shard_failover t=3h dur=1h shard=2 slow=6 reject=1.0\n"
      "auth_brownout  t=5h dur=1h error=1.0\n"
      "mq_drop        t=7h dur=1h drop=1.0\n");
  const FaultSchedule sched = build_fault_schedule(plan, kDay, 6, 10, 1);
  FaultInjector inj(sched, 99);

  // Outside every window: base rates, and the draws consume no RNG (the
  // draw helpers must return false without touching the stream).
  EXPECT_DOUBLE_EQ(inj.s3_error_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(inj.s3_latency_multiplier(0), 1.0);
  EXPECT_DOUBLE_EQ(inj.shard_service_multiplier(2, 0), 1.0);
  EXPECT_FALSE(inj.s3_request_fails(0));
  EXPECT_FALSE(inj.auth_brownout_fails(0));
  EXPECT_FALSE(inj.mq_drops(0));
  EXPECT_FALSE(inj.shard_write_rejected(2, 0));

  // Inside the S3 brownout.
  EXPECT_DOUBLE_EQ(inj.s3_error_rate(90 * kMinute), 0.5);
  EXPECT_DOUBLE_EQ(inj.s3_latency_multiplier(90 * kMinute), 4.0);
  // Inside the failover: only shard 2 is degraded, and with reject=1.0
  // every write there is rejected.
  EXPECT_DOUBLE_EQ(inj.shard_service_multiplier(2, 3 * kHour + kMinute),
                   6.0);
  EXPECT_DOUBLE_EQ(inj.shard_service_multiplier(3, 3 * kHour + kMinute),
                   1.0);
  EXPECT_TRUE(inj.shard_write_rejected(2, 3 * kHour + kMinute));
  EXPECT_FALSE(inj.shard_write_rejected(3, 3 * kHour + kMinute));
  // Deterministic certainties in the auth/mq windows.
  EXPECT_TRUE(inj.auth_brownout_fails(5 * kHour + kMinute));
  EXPECT_TRUE(inj.mq_drops(7 * kHour + kMinute));
  // Windows close.
  EXPECT_DOUBLE_EQ(inj.s3_error_rate(2 * kHour + kMinute), 0.0);
  EXPECT_FALSE(inj.shard_write_rejected(2, 4 * kHour + kMinute));
}

}  // namespace
}  // namespace u1
