file(REMOVE_RECURSE
  "libu1_auth.a"
)
