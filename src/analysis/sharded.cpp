#include "analysis/sharded.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

namespace u1 {

AnalysisMode analysis_mode_from_env() {
  const char* v = std::getenv("U1SIM_ANALYSIS");
  if (v == nullptr || *v == '\0') return AnalysisMode::kSharded;
  const std::string_view s(v);
  if (s == "sharded") return AnalysisMode::kSharded;
  if (s == "merged") return AnalysisMode::kMerged;
  throw std::runtime_error(std::string("U1SIM_ANALYSIS: unknown mode '") +
                           v + "' (want sharded|merged)");
}

const char* to_string(AnalysisMode mode) noexcept {
  return mode == AnalysisMode::kSharded ? "sharded" : "merged";
}

}  // namespace u1
