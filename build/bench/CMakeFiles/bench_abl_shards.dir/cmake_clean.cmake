file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_shards.dir/bench_abl_shards.cpp.o"
  "CMakeFiles/bench_abl_shards.dir/bench_abl_shards.cpp.o.d"
  "bench_abl_shards"
  "bench_abl_shards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_shards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
