#include "cloudstore/object_store.hpp"

#include <stdexcept>

namespace u1 {

void ObjectStore::put(const std::string& key, std::uint64_t size_bytes,
                      SimTime now) {
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    stored_bytes_ -= it->second.size_bytes;
    it->second.size_bytes = size_bytes;
    it->second.stored_at = now;
  } else {
    objects_.emplace(key, StoredObject{key, size_bytes, now});
  }
  stored_bytes_ += size_bytes;
  ++puts_;
}

std::optional<StoredObject> ObjectStore::get(const std::string& key) const {
  ++gets_;
  const auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

bool ObjectStore::remove(const std::string& key) {
  const auto it = objects_.find(key);
  if (it == objects_.end()) return false;
  stored_bytes_ -= it->second.size_bytes;
  objects_.erase(it);
  ++deletes_;
  return true;
}

bool ObjectStore::exists(const std::string& key) const {
  return objects_.contains(key);
}

std::string ObjectStore::initiate_multipart(const std::string& key,
                                            SimTime now) {
  const std::string upload_id = "mpu-" + std::to_string(next_upload_seq_++);
  multiparts_.emplace(upload_id, MultipartUpload{upload_id, key, 0, 0, now});
  return upload_id;
}

bool ObjectStore::upload_part(const std::string& upload_id,
                              std::uint64_t part_bytes) {
  if (part_bytes == 0) return false;
  auto it = multiparts_.find(upload_id);
  if (it == multiparts_.end()) return false;
  ++it->second.parts;
  it->second.bytes += part_bytes;
  return true;
}

std::optional<StoredObject> ObjectStore::complete_multipart(
    const std::string& upload_id, SimTime now) {
  const auto it = multiparts_.find(upload_id);
  if (it == multiparts_.end()) return std::nullopt;
  if (it->second.parts == 0) return std::nullopt;
  put(it->second.key, it->second.bytes, now);
  const StoredObject obj = objects_.at(it->second.key);
  multiparts_.erase(it);
  return obj;
}

bool ObjectStore::abort_multipart(const std::string& upload_id) {
  return multiparts_.erase(upload_id) > 0;
}

std::optional<MultipartUpload> ObjectStore::multipart_state(
    const std::string& upload_id) const {
  const auto it = multiparts_.find(upload_id);
  if (it == multiparts_.end()) return std::nullopt;
  return it->second;
}

double ObjectStore::monthly_bill_usd(double usd_per_gb_month) const noexcept {
  return static_cast<double>(stored_bytes_) / (1024.0 * 1024.0 * 1024.0) *
         usd_per_gb_month;
}

}  // namespace u1
