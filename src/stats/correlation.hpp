// Correlation coefficients. Fig. 10 reports a Pearson correlation of 0.998
// between files and directories per volume.
#pragma once

#include <span>

namespace u1 {

/// Pearson product-moment correlation of two equal-length samples.
/// Throws std::invalid_argument if lengths differ or n < 2.
/// Returns 0 if either sample is constant.
double pearson(std::span<const double> x, std::span<const double> y);

/// Spearman rank correlation (Pearson over ranks, mid-rank ties).
double spearman(std::span<const double> x, std::span<const double> y);

}  // namespace u1
