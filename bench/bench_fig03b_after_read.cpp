// Fig. 3(b): X-after-Read inter-operation time CDFs (WAR / RAR / DAR)
// plus the downloads-per-file tail of the inner plot.
#include "analysis/file_dependencies.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  FileDependencyAnalyzer deps;
  auto sim = run_into(deps, cfg);

  header("Fig 3(b)", "X-after-Read inter-operation times");
  row("RAR share of after-read transitions", 0.66,
      deps.family_share(FileDependency::kRAR));
  row("DAR share", 0.24, deps.family_share(FileDependency::kDAR));
  row("WAR share", 0.10, deps.family_share(FileDependency::kWAR));

  if (!deps.times(FileDependency::kRAR).empty()) {
    Ecdf rar{std::vector<double>(deps.times(FileDependency::kRAR))};
    row("RAR gaps within 1 day", 0.40, rar.at(86400.0));
  }

  auto downloads = deps.downloads_per_file();
  if (!downloads.empty()) {
    Ecdf dl{std::move(downloads)};
    std::printf("\n  downloads-per-file CDF (inner plot):\n");
    for (const double x : {1.0, 2.0, 5.0, 10.0, 100.0}) {
      std::printf("    <= %-6.0f : %.3f\n", x, dl.at(x));
    }
    std::printf("    max downloads for one file: %.0f\n", dl.max());
  }
  row("files unused > 1 day before deletion (share)", 0.091,
      deps.deleted_files() > 0
          ? static_cast<double>(deps.dying_files(kDay)) /
                static_cast<double>(deps.deleted_files())
          : 0.0);
  note("paper: a small fraction of files is very popular (long read "
       "tail) and dying/cold files exist -> caching + warm storage");
  return 0;
}
