// Logfile persistence matching the paper's collection methodology (§4):
// "Each logfile corresponds to the entire activity of a single API/RPC
// process in a machine for a period of time ... there is one log file per
// server/service and day", named production-<machine>-<proc>-<date>.
// The writer shards records into such files; the reader merges a directory
// of them back into timestamp order, tolerating malformed lines (~1% in
// the real dataset).
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "trace/sink.hpp"

namespace u1 {

/// Writes records into per-(machine, process, day) CSV logfiles under a
/// directory. Files carry a header row.
class LogfileWriter final : public TraceSink {
 public:
  explicit LogfileWriter(std::filesystem::path directory);
  ~LogfileWriter() override;

  void append(const TraceRecord& record) override;
  /// Flushes and closes all open files.
  void close();

  std::size_t files_written() const noexcept { return files_.size(); }

 private:
  std::filesystem::path dir_;
  std::map<std::string, std::unique_ptr<std::ofstream>> files_;
};

struct ReadStats {
  std::uint64_t rows = 0;
  std::uint64_t parsed = 0;
  std::uint64_t malformed = 0;  // CSV-level or field-level failures
  std::uint64_t files = 0;
};

/// Reads every "production-*" logfile in a directory, merges the records
/// and delivers them to `sink` in global timestamp order.
/// Returns parsing statistics.
ReadStats read_logfiles(const std::filesystem::path& directory,
                        TraceSink& sink);

/// Reads a single logfile, appending to `out`.
ReadStats read_logfile(const std::filesystem::path& file,
                       std::vector<TraceRecord>& out);

}  // namespace u1
