// Epoch trace merging: turns the per-group epoch chunks into the single
// deterministic stream the sinks and analyzers see.
//
// Contract (the total order every engine build must reproduce): ascending
// timestamp; ties break by group index, then by within-group emission
// order. That is exactly what the original concat-in-group-order +
// stable_sort-by-timestamp produced, but a k-way merge over per-group
// sorted chunks is O(N log G) instead of O(N log N).
//
// The merge produces an index permutation — (group, offset) refs — not a
// record stream. Records stay where the workers wrote them; the
// AnomalyGuard scan (flush stage A) and the sink writes (flush stage B)
// each walk the same plan over the in-place chunks, so the two stages
// can run on different threads at different times without either pass
// copying or re-merging 128-byte records.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace u1 {

/// One entry of a merge plan: chunks[group][offset].
struct MergeRef {
  std::uint32_t group;
  std::uint32_t offset;
};

/// Stable-sorts one group's epoch chunk by timestamp, preserving the
/// emission order of equal-timestamp records. The common case — an
/// already-sorted chunk — costs one is_sorted scan and no moves.
inline void sort_trace_chunk(std::vector<TraceRecord>& chunk) {
  const auto by_time = [](const TraceRecord& a, const TraceRecord& b) {
    return a.t < b.t;
  };
  if (!std::is_sorted(chunk.begin(), chunk.end(), by_time))
    std::stable_sort(chunk.begin(), chunk.end(), by_time);
}

/// K-way merge over per-group chunks, each individually stable-sorted by
/// timestamp (see sort_trace_chunk). Fills `plan` (cleared first;
/// capacity recycles across epochs) with one ref per record in the
/// contract order above. The chunks are never touched beyond reading
/// timestamps.
template <typename Chunks>
void build_merge_plan(const Chunks& chunks, std::vector<MergeRef>& plan) {
  plan.clear();
  std::size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  plan.reserve(total);

  // Single-producer epoch (and the sequential tail): the plan is the
  // identity walk — skip the heap entirely.
  std::size_t non_empty = 0, only = 0;
  for (std::size_t g = 0; g < chunks.size(); ++g)
    if (!chunks[g].empty()) {
      ++non_empty;
      only = g;
    }
  if (non_empty == 0) return;
  if (non_empty == 1) {
    for (std::uint32_t i = 0; i < chunks[only].size(); ++i)
      plan.push_back(MergeRef{static_cast<std::uint32_t>(only), i});
    return;
  }

  struct Head {
    SimTime t;
    std::uint32_t group;
  };
  // Min-heap on (t, group): equal timestamps pop lowest group first, and
  // within one group the cursor preserves emission order — together the
  // (t, group, emission) total order of the old stable_sort.
  const auto later = [](const Head& a, const Head& b) noexcept {
    if (a.t != b.t) return a.t > b.t;
    return a.group > b.group;
  };
  std::vector<Head> heads;
  std::vector<std::uint32_t> cursor(chunks.size(), 0);
  heads.reserve(chunks.size());
  for (std::size_t g = 0; g < chunks.size(); ++g)
    if (!chunks[g].empty())
      heads.push_back(Head{chunks[g].front().t,
                           static_cast<std::uint32_t>(g)});
  std::make_heap(heads.begin(), heads.end(), later);
  while (!heads.empty()) {
    std::pop_heap(heads.begin(), heads.end(), later);
    const std::uint32_t g = heads.back().group;
    heads.pop_back();
    plan.push_back(MergeRef{g, cursor[g]});
    if (++cursor[g] < chunks[g].size()) {
      heads.push_back(Head{chunks[g][cursor[g]].t, g});
      std::push_heap(heads.begin(), heads.end(), later);
    }
  }
}

/// Convenience for tests and one-pass callers: builds the plan and walks
/// it, calling emit(record) once per record in contract order.
template <typename Emit>
void merge_trace_chunks(std::vector<std::vector<TraceRecord>>& chunks,
                        Emit&& emit) {
  std::vector<MergeRef> plan;
  build_merge_plan(chunks, plan);
  for (const MergeRef ref : plan) emit(chunks[ref.group][ref.offset]);
}

}  // namespace u1
