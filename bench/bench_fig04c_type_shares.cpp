// Fig. 4(c): popularity (fraction of files) vs storage consumption
// (fraction of bytes) of the 7 file categories.
#include "analysis/file_types.hpp"
#include "bench/bench_util.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  FileTypeAnalyzer types;
  auto sim = run_into(types, cfg);

  header("Fig 4(c)", "Number vs storage share of file categories");
  std::printf("  %-14s %14s %16s\n", "category", "file share",
              "storage share");
  for (const auto& s : types.category_shares()) {
    std::printf("  %-14s %14.3f %16.3f\n",
                std::string(to_string(s.category)).c_str(), s.file_share,
                s.storage_share);
  }
  std::printf("\n  paper anchors: Docs hold 10.1%% of files / 6.9%% of "
              "storage; Code has the highest\n  file share with minimal "
              "storage; Audio/Video dominates storage share.\n");
  std::printf("  top extensions by file count:");
  for (const auto& ext : types.popular_extensions(8))
    std::printf(" %s", ext.c_str());
  std::printf("\n");
  return 0;
}
