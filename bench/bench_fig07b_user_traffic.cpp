// Fig. 7(b): CDF of data transferred per user.
#include "analysis/users.hpp"
#include "bench/bench_util.hpp"
#include "stats/ecdf.hpp"

int main() {
  using namespace u1;
  using namespace u1::bench;
  const auto cfg = standard_config(env_users(), env_days());
  UserActivityAnalyzer users(0, cfg.days * kDay);
  auto sim = run_into(users, cfg);
  users.finalize();

  header("Fig 7(b)", "Distribution of data transferred per user");
  row("users with any download in the month", 0.14,
      users.downloaders_fraction());
  row("users with any upload in the month", 0.25,
      users.uploaders_fraction());

  Ecdf up{users.upload_bytes_per_user()};
  Ecdf down{users.download_bytes_per_user()};
  std::printf("\n  CDF of transferred bytes per user:\n");
  std::printf("  %-10s %10s %10s\n", "x", "upload", "download");
  for (const auto& [label, x] :
       std::vector<std::pair<const char*, double>>{
           {"1B", 1},         {"1KB", 1e3},   {"1MB", 1e6},
           {"100MB", 1e8},    {"1GB", 1e9},   {"10GB", 1e10}}) {
    std::printf("  %-10s %10.3f %10.3f\n", label, up.at(x), down.at(x));
  }
  note("paper: a minority of users is responsible for the storage "
       "workload of U1");
  return 0;
}
