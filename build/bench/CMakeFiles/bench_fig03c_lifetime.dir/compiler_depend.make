# Empty compiler generated dependencies file for bench_fig03c_lifetime.
# This may be replaced when dependencies are built.
