file(REMOVE_RECURSE
  "libu1_improve.a"
)
